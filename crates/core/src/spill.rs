//! On-disk report runs: the spill-file format and the k-way merge
//! behind [`SpillingSink`](crate::engine::SpillingSink).
//!
//! The bounded-memory report story so far
//! ([`StreamingSink`](crate::engine::StreamingSink)) flushes
//! canonically sorted *chunks*,
//! so the writer sees a partially ordered report and a fully sorted one
//! still has to be materialised somewhere. This module removes that
//! last O(chip) term: each chunk becomes a **sorted run** appended to
//! one unlinked temp file, and at finish a k-way merge (binary heap
//! over per-run cursors, ordered by the same canonical key as
//! [`crate::report::canonical_sort`]) streams the *fully sorted* report
//! to the output writer — no point in the run ever holds more than one
//! budget of violations plus O(runs) merge cursors in memory.
//!
//! ## Run-file format
//!
//! A [`SpillFile`] is a single anonymous temp file holding every run of
//! one report back to back; a run is a contiguous segment of
//! length-prefixed records, tracked as `(offset, bytes, records)` in
//! memory:
//!
//! ```text
//! record  := len: u32 LE, payload[len]
//! payload := stage: u8 (report stage rank)
//!            kind: u8 tag, kind fields (strings len-prefixed, coords i64 LE)
//!            location: u8 flag [, x1 y1 x2 y2: i64 LE]
//!            context: u32 LE len, utf8 bytes
//! ```
//!
//! Records are **self-contained**: every string is copied into the
//! record, so merging needs no chip view, interner, or layout alive —
//! a run written during the pipeline can be merged after every other
//! artefact of the check has been dropped. Decoding validates tags and
//! UTF-8 and surfaces corruption as [`std::io::ErrorKind::InvalidData`]
//! rather than panicking: run files are I/O, and I/O is allowed to
//! fail.
//!
//! ## Merge invariants
//!
//! * Every run is canonically sorted when appended
//!   ([`SpillFile::append_run`] debug-asserts it); the heap pops
//!   records in global canonical order, so the merged stream equals
//!   [`canonical_sort`](crate::report::canonical_sort) of the
//!   concatenation byte for byte.
//! * Ties (byte-identical violations) are broken by run index, which
//!   renders the merge deterministic; since equal keys are equal debug
//!   renderings of equal values, tie order cannot change the output
//!   bytes.
//! * Cursors read through one shared file handle with an explicit seek
//!   per buffer refill (the merge is single-threaded), so a thousand
//!   runs cost one file descriptor, not a thousand.
//!
//! The temp file is unlinked immediately after creation on Unix (the
//! kernel reclaims it even if the process aborts mid-merge); elsewhere
//! it is deleted on drop.

use crate::report::stage_rank;
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_geom::Rect;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// Record codec
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn stage_tag(stage: CheckStage) -> u8 {
    stage_rank(stage) as u8
}

fn stage_from_tag(tag: u8) -> io::Result<CheckStage> {
    Ok(match tag {
        0 => CheckStage::Elements,
        1 => CheckStage::PrimitiveSymbols,
        2 => CheckStage::Connections,
        3 => CheckStage::NetList,
        4 => CheckStage::Interactions,
        5 => CheckStage::Composition,
        other => return Err(bad_data(format!("unknown stage tag {other}"))),
    })
}

fn erc_tag(rule: diic_netlist::ErcRule) -> u8 {
    use diic_netlist::ErcRule::*;
    match rule {
        DanglingNet => 0,
        PowerGroundShort => 1,
        BusToRail => 2,
        DepletionToGround => 3,
    }
}

fn erc_from_tag(tag: u8) -> io::Result<diic_netlist::ErcRule> {
    use diic_netlist::ErcRule::*;
    Ok(match tag {
        0 => DanglingNet,
        1 => PowerGroundShort,
        2 => BusToRail,
        3 => DepletionToGround,
        other => return Err(bad_data(format!("unknown ERC rule tag {other}"))),
    })
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("spill record: {msg}"))
}

/// Appends one length-prefixed record for `v` to `buf`.
pub fn encode_violation(v: &Violation, buf: &mut Vec<u8>) {
    let len_at = buf.len();
    put_u32(buf, 0); // patched below
    buf.push(stage_tag(v.stage));
    use ViolationKind::*;
    match &v.kind {
        Width {
            layer,
            measured,
            required,
        } => {
            buf.push(0);
            put_str(buf, layer);
            put_i64(buf, *measured);
            put_i64(buf, *required);
        }
        Spacing {
            layer_a,
            layer_b,
            measured,
            required,
            same_net,
        } => {
            buf.push(1);
            put_str(buf, layer_a);
            put_str(buf, layer_b);
            put_i64(buf, *measured);
            put_i64(buf, *required);
            buf.push(*same_net as u8);
        }
        IllegalConnection { layer } => {
            buf.push(2);
            put_str(buf, layer);
        }
        ImpliedDevice { layer_a, layer_b } => {
            buf.push(3);
            put_str(buf, layer_a);
            put_str(buf, layer_b);
        }
        DeviceOnlyLayer { layer } => {
            buf.push(4);
            put_str(buf, layer);
        }
        NonManhattan => buf.push(5),
        UnknownLayer { cif_name } => {
            buf.push(6);
            put_str(buf, cif_name);
        }
        UnknownDeviceType { type_name } => {
            buf.push(7);
            put_str(buf, type_name);
        }
        DeviceRule { device_type, rule } => {
            buf.push(8);
            put_str(buf, device_type);
            put_str(buf, rule);
        }
        TerminalOutsideDevice { terminal } => {
            buf.push(9);
            put_str(buf, terminal);
        }
        Erc { rule, detail } => {
            buf.push(10);
            buf.push(erc_tag(*rule));
            put_str(buf, detail);
        }
        NetlistMismatch { detail } => {
            buf.push(11);
            put_str(buf, detail);
        }
        MaskOddCycle {
            layer,
            measured,
            required,
            cycle,
        } => {
            buf.push(12);
            put_str(buf, layer);
            put_i64(buf, *measured);
            put_i64(buf, *required);
            put_u32(buf, *cycle as u32);
        }
    }
    match &v.location {
        None => buf.push(0),
        Some(r) => {
            buf.push(1);
            put_i64(buf, r.x1);
            put_i64(buf, r.y1);
            put_i64(buf, r.x2);
            put_i64(buf, r.y2);
        }
    }
    put_str(buf, &v.context);
    let payload = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&payload.to_le_bytes());
}

/// A bounds-checked reader over one record payload.
struct Payload<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Payload<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad_data("truncated payload".into()))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        // invariant: take(4) returned exactly 4 bytes.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn i64(&mut self) -> io::Result<i64> {
        // invariant: take(8) returned exactly 8 bytes.
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn string(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("string not UTF-8".into()))
    }

    fn finish(self) -> io::Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(bad_data("trailing bytes in record".into()))
        }
    }
}

/// Decodes one record payload (everything after the length prefix).
pub fn decode_violation(payload: &[u8]) -> io::Result<Violation> {
    let mut p = Payload {
        bytes: payload,
        at: 0,
    };
    let stage = stage_from_tag(p.u8()?)?;
    use ViolationKind::*;
    let kind = match p.u8()? {
        0 => Width {
            layer: p.string()?,
            measured: p.i64()?,
            required: p.i64()?,
        },
        1 => Spacing {
            layer_a: p.string()?,
            layer_b: p.string()?,
            measured: p.i64()?,
            required: p.i64()?,
            same_net: p.u8()? != 0,
        },
        2 => IllegalConnection { layer: p.string()? },
        3 => ImpliedDevice {
            layer_a: p.string()?,
            layer_b: p.string()?,
        },
        4 => DeviceOnlyLayer { layer: p.string()? },
        5 => NonManhattan,
        6 => UnknownLayer {
            cif_name: p.string()?,
        },
        7 => UnknownDeviceType {
            type_name: p.string()?,
        },
        8 => DeviceRule {
            device_type: p.string()?,
            rule: p.string()?,
        },
        9 => TerminalOutsideDevice {
            terminal: p.string()?,
        },
        10 => Erc {
            rule: erc_from_tag(p.u8()?)?,
            detail: p.string()?,
        },
        11 => NetlistMismatch {
            detail: p.string()?,
        },
        12 => MaskOddCycle {
            layer: p.string()?,
            measured: p.i64()?,
            required: p.i64()?,
            cycle: p.u32()? as usize,
        },
        other => return Err(bad_data(format!("unknown kind tag {other}"))),
    };
    let location = match p.u8()? {
        0 => None,
        1 => Some(Rect::new(p.i64()?, p.i64()?, p.i64()?, p.i64()?)),
        other => return Err(bad_data(format!("bad location flag {other}"))),
    };
    let context = p.string()?;
    p.finish()?;
    Ok(Violation {
        stage,
        kind,
        location,
        context,
    })
}

// ---------------------------------------------------------------------
// Spill file: one temp file, many sorted runs
// ---------------------------------------------------------------------

/// One run inside the spill file: a contiguous segment of records.
#[derive(Debug, Clone, Copy)]
struct Segment {
    offset: u64,
    bytes: u64,
    records: u64,
}

/// Sequence number distinguishing concurrent spill files of one process
/// (the PID alone is not enough: parallel tests spill at once).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// The on-disk half of a spilling report: an anonymous temp file whose
/// contents are canonically sorted runs, plus the in-memory segment
/// table. Created lazily by
/// [`SpillingSink`](crate::engine::SpillingSink) on first spill.
#[derive(Debug)]
pub struct SpillFile {
    file: File,
    /// Kept only on platforms where the file cannot be unlinked while
    /// open; deleted on drop.
    path: Option<PathBuf>,
    segments: Vec<Segment>,
    tail: u64,
}

impl SpillFile {
    /// Creates the spill file in `dir` (defaults to
    /// [`std::env::temp_dir`]). On Unix the path is unlinked
    /// immediately, so the disk space is reclaimed even if the process
    /// dies mid-run.
    pub fn create_in(dir: Option<&std::path::Path>) -> io::Result<SpillFile> {
        let dir = dir
            .map(|d| d.to_path_buf())
            .unwrap_or_else(std::env::temp_dir);
        let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
        let name = format!("diic-spill-{}-{}.run", std::process::id(), seq);
        let path = dir.join(name);
        let file = File::options()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        let path = if cfg!(unix) {
            // invariant: on Unix an open file survives unlinking — the
            // handle stays valid and the kernel reclaims the blocks
            // when it closes, crash included.
            std::fs::remove_file(&path)?;
            None
        } else {
            Some(path)
        };
        Ok(SpillFile {
            file,
            path,
            segments: Vec::new(),
            tail: 0,
        })
    }

    /// Appends one canonically sorted chunk as a new run (one
    /// `write_all` of the whole encoded segment).
    pub fn append_run(&mut self, sorted: &[Violation]) -> io::Result<()> {
        debug_assert!(
            sorted
                .windows(2)
                .all(|w| crate::report::canonical_key(&w[0]) <= crate::report::canonical_key(&w[1])),
            "spill runs must be canonically sorted"
        );
        if sorted.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::with_capacity(sorted.len() * 96);
        for v in sorted {
            encode_violation(v, &mut buf);
        }
        self.file.seek(SeekFrom::Start(self.tail))?;
        self.file.write_all(&buf)?;
        self.segments.push(Segment {
            offset: self.tail,
            bytes: buf.len() as u64,
            records: sorted.len() as u64,
        });
        self.tail += buf.len() as u64;
        Ok(())
    }

    /// Number of runs written so far.
    pub fn runs(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes spilled so far.
    pub fn bytes(&self) -> u64 {
        self.tail
    }

    /// Total records spilled so far.
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// Streams every spilled violation to `emit` in **global canonical
    /// order** — the k-way merge. Consumes the segment table. The
    /// callback receives the violation *and* its debug rendering (the
    /// canonical sort key, which the merge has already paid for — the
    /// report line format), and may return a writer error to abort the
    /// merge.
    pub fn merge(
        &mut self,
        emit: &mut dyn FnMut(Violation, String) -> io::Result<()>,
    ) -> io::Result<()> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let segments = std::mem::take(&mut self.segments);
        let mut cursors: Vec<RunCursor> = segments.iter().map(|s| RunCursor::new(*s)).collect();

        // Heap entries carry the canonical key (stage rank + debug
        // rendering) so each record is rendered exactly once; the run
        // index breaks ties deterministically.
        let mut heap: BinaryHeap<Reverse<(usize, String, usize)>> =
            BinaryHeap::with_capacity(cursors.len());
        let mut staged: Vec<Option<Violation>> = Vec::with_capacity(cursors.len());
        for (i, c) in cursors.iter_mut().enumerate() {
            staged.push(match c.next(&self.file)? {
                Some(v) => {
                    heap.push(Reverse((stage_rank(v.stage), format!("{v:?}"), i)));
                    Some(v)
                }
                None => None,
            });
        }
        while let Some(Reverse((_, line, i))) = heap.pop() {
            // invariant: a cursor enters the heap only right after
            // staging its next record.
            let v = staged[i].take().expect("heap entry has a staged record");
            emit(v, line)?;
            if let Some(next) = cursors[i].next(&self.file)? {
                heap.push(Reverse((stage_rank(next.stage), format!("{next:?}"), i)));
                staged[i] = Some(next);
            }
        }
        Ok(())
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        if let Some(path) = &self.path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Read cursor over one segment, buffering through the shared file
/// handle (explicit seek per refill — the merge is single-threaded, so
/// one descriptor serves every run).
struct RunCursor {
    next_at: u64,
    end: u64,
    buf: Vec<u8>,
    off: usize,
}

/// Refill granularity for run cursors (records larger than this are
/// read with an exactly sized request).
const CURSOR_BUF: usize = 64 * 1024;

impl RunCursor {
    fn new(seg: Segment) -> RunCursor {
        RunCursor {
            next_at: seg.offset,
            end: seg.offset + seg.bytes,
            buf: Vec::new(),
            off: 0,
        }
    }

    /// Ensures at least `need` unread bytes are buffered.
    fn fill(&mut self, file: &File, need: usize) -> io::Result<()> {
        let have = self.buf.len() - self.off;
        if have >= need {
            return Ok(());
        }
        self.buf.drain(..self.off);
        self.off = 0;
        let remaining = (self.end - self.next_at) as usize;
        let want = need.max(CURSOR_BUF).min(self.buf.len() + remaining);
        if self.buf.len() >= want {
            return Err(bad_data("record extends past its segment".into()));
        }
        let mut chunk = vec![0u8; want - self.buf.len()];
        let mut f = file;
        f.seek(SeekFrom::Start(self.next_at))?;
        f.read_exact(&mut chunk)?;
        self.next_at += chunk.len() as u64;
        self.buf.extend_from_slice(&chunk);
        if self.buf.len() - self.off < need {
            return Err(bad_data("truncated segment".into()));
        }
        Ok(())
    }

    /// Decodes the next record, or `None` at the end of the segment.
    fn next(&mut self, file: &File) -> io::Result<Option<Violation>> {
        let unread = (self.end - self.next_at) as usize + (self.buf.len() - self.off);
        if unread == 0 {
            return Ok(None);
        }
        self.fill(file, 4)?;
        // invariant: fill errored unless 4 bytes are now buffered.
        let len =
            u32::from_le_bytes(self.buf[self.off..self.off + 4].try_into().expect("4")) as usize;
        self.off += 4;
        self.fill(file, len)?;
        let v = decode_violation(&self.buf[self.off..self.off + len])?;
        self.off += len;
        Ok(Some(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{canonical_key, canonical_sort};

    fn sample_kinds() -> Vec<Violation> {
        use ViolationKind::*;
        let loc = Some(Rect::new(-5, 0, 10, 20));
        let mk = |stage, kind, location, context: &str| Violation {
            stage,
            kind,
            location,
            context: context.into(),
        };
        vec![
            mk(
                CheckStage::Elements,
                Width {
                    layer: "metal".into(),
                    measured: 700,
                    required: 750,
                },
                loc,
                "r0c0",
            ),
            mk(
                CheckStage::Interactions,
                Spacing {
                    layer_a: "poly".into(),
                    layer_b: "diff".into(),
                    measured: 200,
                    required: 250,
                    same_net: true,
                },
                loc,
                "i3.i1",
            ),
            mk(
                CheckStage::Connections,
                IllegalConnection {
                    layer: "metal".into(),
                },
                None,
                "",
            ),
            mk(
                CheckStage::Connections,
                ImpliedDevice {
                    layer_a: "poly".into(),
                    layer_b: "diff".into(),
                },
                loc,
                "x",
            ),
            mk(
                CheckStage::Connections,
                DeviceOnlyLayer {
                    layer: "contact".into(),
                },
                loc,
                "",
            ),
            mk(CheckStage::Elements, NonManhattan, None, "w"),
            mk(
                CheckStage::Elements,
                UnknownLayer {
                    cif_name: "XX".into(),
                },
                None,
                "",
            ),
            mk(
                CheckStage::PrimitiveSymbols,
                UnknownDeviceType {
                    type_name: "FOO".into(),
                },
                None,
                "",
            ),
            mk(
                CheckStage::PrimitiveSymbols,
                DeviceRule {
                    device_type: "NMOS_ENH".into(),
                    rule: "gate overhang".into(),
                },
                loc,
                "t1",
            ),
            mk(
                CheckStage::PrimitiveSymbols,
                TerminalOutsideDevice {
                    terminal: "G".into(),
                },
                loc,
                "t1",
            ),
            mk(
                CheckStage::Composition,
                Erc {
                    rule: diic_netlist::ErcRule::PowerGroundShort,
                    detail: "net VDD".into(),
                },
                None,
                "VDD",
            ),
            mk(
                CheckStage::NetList,
                NetlistMismatch {
                    detail: "missing device".into(),
                },
                None,
                "",
            ),
            mk(
                CheckStage::Interactions,
                MaskOddCycle {
                    layer: "metal".into(),
                    measured: 950,
                    required: 1250,
                    cycle: 3,
                },
                loc,
                "i2",
            ),
        ]
    }

    #[test]
    fn codec_round_trips_every_kind() {
        for v in sample_kinds() {
            let mut buf = Vec::new();
            encode_violation(&v, &mut buf);
            let len = u32::from_le_bytes(buf[..4].try_into().unwrap()) as usize;
            assert_eq!(len + 4, buf.len());
            let back = decode_violation(&buf[4..]).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut buf = Vec::new();
        encode_violation(&sample_kinds()[0], &mut buf);
        // Truncated payload.
        assert!(decode_violation(&buf[4..buf.len() - 1]).is_err());
        // Unknown kind tag.
        let mut bad = buf[4..].to_vec();
        bad[1] = 200;
        assert!(decode_violation(&bad).is_err());
        // Unknown stage tag.
        let mut bad = buf[4..].to_vec();
        bad[0] = 99;
        assert!(decode_violation(&bad).is_err());
        // Trailing bytes.
        let mut bad = buf[4..].to_vec();
        bad.push(0);
        assert!(decode_violation(&bad).is_err());
    }

    #[test]
    fn multi_run_merge_is_globally_sorted() {
        let mut all = sample_kinds();
        // Duplicate a few so the merge sees ties across runs.
        all.extend(sample_kinds().into_iter().take(3));
        canonical_sort(&mut all);

        // Split into interleaved runs (every 3rd record per run) so no
        // single run is already the answer.
        let mut spill = SpillFile::create_in(None).unwrap();
        for lane in 0..3usize {
            let run: Vec<Violation> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 3 == lane)
                .map(|(_, v)| v.clone())
                .collect();
            spill.append_run(&run).unwrap();
        }
        assert_eq!(spill.runs(), 3);
        assert_eq!(spill.records(), all.len() as u64);
        assert!(spill.bytes() > 0);

        let mut merged = Vec::new();
        spill
            .merge(&mut |v, line| {
                assert_eq!(line, format!("{v:?}"), "key is the rendering");
                merged.push(v);
                Ok(())
            })
            .unwrap();
        assert_eq!(merged, all);
        assert!(merged
            .windows(2)
            .all(|w| canonical_key(&w[0]) <= canonical_key(&w[1])));
    }

    #[test]
    fn single_record_runs_merge() {
        // The budget=1 degenerate shape: every violation its own run.
        let mut all = sample_kinds();
        canonical_sort(&mut all);
        let mut spill = SpillFile::create_in(None).unwrap();
        // Append in a scrambled order: run order must not matter.
        for i in (0..all.len()).rev() {
            spill.append_run(std::slice::from_ref(&all[i])).unwrap();
        }
        let mut merged = Vec::new();
        spill
            .merge(&mut |v, _| {
                merged.push(v);
                Ok(())
            })
            .unwrap();
        assert_eq!(merged, all);
    }

    #[test]
    fn empty_runs_are_skipped() {
        let mut spill = SpillFile::create_in(None).unwrap();
        spill.append_run(&[]).unwrap();
        assert_eq!(spill.runs(), 0);
        let mut n = 0usize;
        spill
            .merge(&mut |_, _| {
                n += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn merge_propagates_emit_errors() {
        let mut spill = SpillFile::create_in(None).unwrap();
        spill.append_run(&sample_kinds()[..1]).unwrap();
        let err = spill
            .merge(&mut |_, _| Err(io::Error::other("writer full")))
            .expect_err("emit error must abort the merge");
        assert_eq!(err.to_string(), "writer full");
    }
}
