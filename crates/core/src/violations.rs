//! The violation model: what the checker reports.
//!
//! The paper's Fig. 1 argument is about report *quality* — fewer false
//! errors, no unchecked errors — so every finding carries the three
//! things that make a report actionable: the pipeline stage that found
//! it ([`CheckStage`], Fig. 10's boxes), a typed [`ViolationKind`] with
//! the measured-vs-required numbers (not just a marker), and a
//! topological `context` string (the instance paths involved, rendered
//! from the chip view's interned strings). Violations are plain data:
//! ordering, deduplication and accounting live in [`crate::report`],
//! and transport (buffer / stream / count) in the
//! [`Sink`](crate::engine::Sink) trait.

use diic_geom::{Coord, Rect};
use diic_netlist::ErcRule;

/// Which pipeline stage (paper Fig. 10) produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckStage {
    /// "Check elements" — interconnect width per symbol definition.
    Elements,
    /// "Check primitive symbols" — device-internal rules.
    PrimitiveSymbols,
    /// "Check legal connections" — skeletal connectivity.
    Connections,
    /// "Generate hierarchical net list" — extraction anomalies.
    NetList,
    /// "Check interactions" — spacing via the rule matrix.
    Interactions,
    /// Non-geometric construction rules (ERC).
    Composition,
}

impl std::fmt::Display for CheckStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CheckStage::Elements => "elements",
            CheckStage::PrimitiveSymbols => "primitive-symbols",
            CheckStage::Connections => "connections",
            CheckStage::NetList => "net-list",
            CheckStage::Interactions => "interactions",
            CheckStage::Composition => "composition",
        };
        f.write_str(s)
    }
}

/// What kind of rule was violated.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// Feature narrower than the layer's minimum width.
    Width {
        /// The layer name.
        layer: String,
        /// Measured width.
        measured: Coord,
        /// Required minimum.
        required: Coord,
    },
    /// Features closer than the applicable spacing rule.
    Spacing {
        /// First layer name.
        layer_a: String,
        /// Second layer name.
        layer_b: String,
        /// Measured distance (0 = touching/overlapping).
        measured: Coord,
        /// Required minimum.
        required: Coord,
        /// True if the offending pair shared a net (only possible for
        /// rules with a same-net subcase, e.g. across a resistor).
        same_net: bool,
    },
    /// Same-layer elements touch but are not skeletally connected
    /// (paper Fig. 11/15): the union's width is not guaranteed legal.
    IllegalConnection {
        /// The layer name.
        layer: String,
    },
    /// Interconnect on two layers forms an undeclared device (paper
    /// Fig. 8: poly crossing diffusion outside a transistor symbol).
    ImpliedDevice {
        /// First layer name.
        layer_a: String,
        /// Second layer name.
        layer_b: String,
    },
    /// An element on a device-only layer (contact, implant, buried)
    /// appears outside any declared device symbol.
    DeviceOnlyLayer {
        /// The layer name.
        layer: String,
    },
    /// A wire with non-axis-parallel segments (the DIIC design style is
    /// Manhattan).
    NonManhattan,
    /// A CIF layer name that the technology does not define.
    UnknownLayer {
        /// The CIF layer name.
        cif_name: String,
    },
    /// A `9D` device type the technology does not define.
    UnknownDeviceType {
        /// The declared type name.
        type_name: String,
    },
    /// A device-internal construction rule failed.
    DeviceRule {
        /// The device type.
        device_type: String,
        /// Which rule failed, in words.
        rule: String,
    },
    /// A declared terminal lies outside the device's geometry on its layer.
    TerminalOutsideDevice {
        /// Terminal name.
        terminal: String,
    },
    /// A non-geometric (electrical construction) rule failed.
    Erc {
        /// The ERC rule.
        rule: ErcRule,
        /// Details (net names).
        detail: String,
    },
    /// Extracted net list does not match the intended net list.
    NetlistMismatch {
        /// Description of the discrepancy.
        detail: String,
    },
    /// The layer's same-mask conflict graph (features closer than the
    /// `same_mask` rule, but not touching, conflict) contains an odd
    /// cycle: no two-mask (double-patterning) decomposition exists. The
    /// violation anchors at the closest conflicting edge of the cycle;
    /// `measured` is that edge's gap.
    MaskOddCycle {
        /// The layer name.
        layer: String,
        /// The conflicting gap at the reported edge.
        measured: Coord,
        /// The same-mask spacing the edge violates.
        required: Coord,
        /// Number of features in the odd cycle (always odd, ≥ 3).
        cycle: usize,
    },
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Width {
                layer,
                measured,
                required,
            } => {
                write!(f, "width {measured} < {required} on {layer}")
            }
            ViolationKind::Spacing {
                layer_a,
                layer_b,
                measured,
                required,
                same_net,
            } => {
                let net = if *same_net { " (same net)" } else { "" };
                write!(
                    f,
                    "spacing {measured} < {required} between {layer_a} and {layer_b}{net}"
                )
            }
            ViolationKind::IllegalConnection { layer } => {
                write!(
                    f,
                    "elements touch on {layer} but are not skeletally connected"
                )
            }
            ViolationKind::ImpliedDevice { layer_a, layer_b } => {
                write!(
                    f,
                    "undeclared device: {layer_a} crosses {layer_b} outside a device symbol"
                )
            }
            ViolationKind::DeviceOnlyLayer { layer } => {
                write!(f, "{layer} geometry outside any device symbol")
            }
            ViolationKind::NonManhattan => write!(f, "non-Manhattan wire"),
            ViolationKind::UnknownLayer { cif_name } => {
                write!(f, "unknown layer {cif_name}")
            }
            ViolationKind::UnknownDeviceType { type_name } => {
                write!(f, "unknown device type {type_name}")
            }
            ViolationKind::DeviceRule { device_type, rule } => {
                write!(f, "device {device_type}: {rule}")
            }
            ViolationKind::TerminalOutsideDevice { terminal } => {
                write!(f, "terminal {terminal} outside device geometry")
            }
            ViolationKind::Erc { rule, detail } => write!(f, "{rule}: {detail}"),
            ViolationKind::NetlistMismatch { detail } => {
                write!(f, "net list mismatch: {detail}")
            }
            ViolationKind::MaskOddCycle {
                layer,
                measured,
                required,
                cycle,
            } => {
                write!(
                    f,
                    "same-mask conflict on {layer}: {cycle}-feature odd cycle \
                     (gap {measured} < {required}) is not two-mask decomposable"
                )
            }
        }
    }
}

/// A reported violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The pipeline stage that found it.
    pub stage: CheckStage,
    /// What was violated.
    pub kind: ViolationKind,
    /// Location. For per-definition checks (stages 1–2) this is in the
    /// symbol's local coordinates; for instantiated checks it is in chip
    /// coordinates.
    pub location: Option<Rect>,
    /// Context: symbol name for definition checks, instance path or net
    /// name otherwise.
    pub context: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.stage, self.kind)?;
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        if !self.context.is_empty() {
            write!(f, " ({})", self.context)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let v = Violation {
            stage: CheckStage::Interactions,
            kind: ViolationKind::Spacing {
                layer_a: "poly".into(),
                layer_b: "diff".into(),
                measured: 200,
                required: 250,
                same_net: false,
            },
            location: Some(Rect::new(0, 0, 10, 10)),
            context: "i3.i1".into(),
        };
        let s = v.to_string();
        assert!(s.contains("[interactions]"));
        assert!(s.contains("spacing 200 < 250"));
        assert!(s.contains("(i3.i1)"));
    }

    #[test]
    fn stage_names() {
        assert_eq!(CheckStage::Elements.to_string(), "elements");
        assert_eq!(CheckStage::Composition.to_string(), "composition");
    }
}
