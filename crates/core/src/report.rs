//! Report formatting, canonical ordering, and the Fig. 1 error-region
//! accounting.
//!
//! The paper's Fig. 1 partitions the world into: region 1 — real errors
//! **not** flagged (unchecked); region 2 — real errors flagged; region 3 —
//! flagged non-errors (false errors). Given a ground-truth ledger of
//! injected errors, [`account`] classifies a checker's output and computes
//! the false:real ratio ("the ratio of false to real errors can be 10 to 1
//! or higher").
//!
//! This module also owns the **canonical report order** the rest of the
//! crate leans on: [`canonical_sort`] (stage rank, then the violation's
//! total debug rendering) is the order every differential oracle
//! compares in and the form the incremental session caches its report
//! in, and [`merge_canonical`] is the linear splice that keeps report
//! patching O(kept + fresh) instead of a full re-sort per edit. Stage
//! ranks ([`stage_rank`] / [`STAGE_COUNT`]) size every per-stage array
//! in the crate, so a new [`CheckStage`] variant fails the build here
//! rather than panicking at the first out-of-bounds count.

use crate::violations::{CheckStage, Violation};
use diic_geom::Rect;
use std::collections::HashSet;
use std::fmt::Write as _;

/// One injected (ground-truth) error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedError {
    /// Where the error was injected (chip coordinates).
    pub location: Rect,
    /// Category tag that a matching violation must carry (see
    /// [`category_of`]).
    pub category: &'static str,
    /// Free-form description.
    pub description: String,
}

/// The Fig. 1 accounting result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorRegions {
    /// Region 2: injected errors that were flagged.
    pub real_flagged: usize,
    /// Region 1: injected errors that were missed.
    pub unchecked: usize,
    /// Region 3: flagged violations matching no injected error.
    pub false_errors: usize,
    /// Total violations reported.
    pub reported: usize,
    /// Total errors injected.
    pub injected: usize,
}

impl ErrorRegions {
    /// The false-to-real ratio (∞ when nothing real was flagged but false
    /// errors exist; 0 when nothing false).
    pub fn false_to_real_ratio(&self) -> f64 {
        if self.real_flagged == 0 {
            if self.false_errors == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.false_errors as f64 / self.real_flagged as f64
        }
    }

    /// Coverage: fraction of injected errors flagged.
    pub fn coverage(&self) -> f64 {
        if self.injected == 0 {
            1.0
        } else {
            self.real_flagged as f64 / self.injected as f64
        }
    }
}

/// Number of report stages — the exclusive upper bound of
/// [`stage_rank`]. Size per-stage arrays (e.g.
/// [`CountingSink`](crate::CountingSink)) with this so a new
/// [`CheckStage`] variant breaks the build here instead of panicking at
/// the first out-of-bounds count.
pub const STAGE_COUNT: usize = 6;

/// The rank of a stage in report order — the order the standard pipeline
/// registers its stages, which is also the order [`format_report`]
/// groups by. Always below [`STAGE_COUNT`].
pub fn stage_rank(stage: CheckStage) -> usize {
    match stage {
        CheckStage::Elements => 0,
        CheckStage::PrimitiveSymbols => 1,
        CheckStage::Connections => 2,
        CheckStage::NetList => 3,
        CheckStage::Interactions => 4,
        CheckStage::Composition => 5,
    }
}

/// Sorts violations into the **canonical report order**: by stage rank,
/// then by the violation's full debug rendering (a total order over
/// kind, location, and context).
///
/// An engine run's natural order — stage registration order, stable
/// within each stage (see
/// [`DiagnosticSink::into_violations`](crate::DiagnosticSink::into_violations))
/// — is a refinement-compatible coarsening of this: canonical order only
/// reorders *within* a stage. The incremental checker keeps its cached
/// report canonical so that retracting and splicing violations lands in
/// exactly the order a canonicalized from-scratch run produces, making
/// "patched == full re-check" literal byte equality.
pub fn canonical_sort(violations: &mut [Violation]) {
    violations.sort_by_cached_key(|v| (stage_rank(v.stage), format!("{v:?}")));
}

/// The key [`canonical_sort`] orders by, exposed for merge-style
/// consumers.
pub fn canonical_key(v: &Violation) -> (usize, String) {
    (stage_rank(v.stage), format!("{v:?}"))
}

/// Merges two **already canonically sorted** violation lists into one
/// canonically sorted list — a linear splice instead of re-sorting the
/// concatenation.
///
/// This is the incremental session's report-patch path: the violations
/// it *keeps* from the cached report are a sorted subsequence by
/// construction, so only the fresh side pays a sort and the combined
/// list costs one merge. Kept-side keys are rendered **lazily** (each
/// at most once, and none at all past the last fresh insertion point),
/// so an edit that splices a handful of fresh violations into a large
/// cached report re-formats only the prefix it walks, not the whole
/// list. Ties (byte-identical violations) take the `kept` side first;
/// since equal keys mean equal debug renderings of equal-stage
/// violations — i.e. identical values — either choice yields the same
/// bytes as a full [`canonical_sort`].
pub fn merge_canonical(kept: Vec<Violation>, fresh: Vec<Violation>) -> Vec<Violation> {
    if kept.is_empty() {
        return fresh;
    }
    if fresh.is_empty() {
        return kept;
    }
    let kb: Vec<(usize, String)> = fresh.iter().map(canonical_key).collect();
    debug_assert!(kb.is_sorted(), "merge_canonical: fresh side not canonical");
    let mut out = Vec::with_capacity(kept.len() + fresh.len());
    let mut a = kept.into_iter().peekable();
    let mut a_key: Option<(usize, String)> = None; // key of a.peek(), rendered once
    let (mut b, mut j) = (fresh.into_iter(), 0usize);
    while j < kb.len() {
        let take_kept = match a.peek() {
            None => false,
            Some(v) => *a_key.get_or_insert_with(|| canonical_key(v)) <= kb[j],
        };
        if take_kept {
            // invariant: take_kept is only true when peek saw an item.
            out.push(a.next().expect("peeked"));
            a_key = None;
        } else {
            // invariant: j < kb.len() means the fresh iterator still
            // holds the item its precomputed key stands for.
            out.push(b.next().expect("fresh item behind key"));
            j += 1;
        }
    }
    out.extend(a);
    out
}

/// The category a violation belongs to, for ground-truth matching.
pub fn category_of(v: &Violation) -> &'static str {
    use crate::violations::ViolationKind::*;
    match &v.kind {
        Width { .. } => "width",
        Spacing { .. } => "spacing",
        IllegalConnection { .. } => "connection",
        ImpliedDevice { .. } => "implied-device",
        DeviceOnlyLayer { .. } => "device-only-layer",
        NonManhattan => "non-manhattan",
        UnknownLayer { .. } => "unknown-layer",
        UnknownDeviceType { .. } => "unknown-device",
        // The contact-over-gate class gets its own category: both the DIIC
        // archetype rule and the flat checker's mask-level rule detect it,
        // and it must not satisfy ground truth for other device rules.
        DeviceRule { rule, .. }
            if rule.contains("active gate") || rule.contains("contact over") =>
        {
            "contact-over-gate"
        }
        DeviceRule { .. } => "device-rule",
        TerminalOutsideDevice { .. } => "terminal",
        Erc { .. } => "erc",
        NetlistMismatch { .. } => "netlist",
        MaskOddCycle { .. } => "multi-patterning",
    }
}

/// Matches violations against injected errors by category and location
/// (inflated by `tolerance`), and computes the error regions.
///
/// A violation without a location can only match location-less ground
/// truth of the same category (ERC errors use a zero rect sentinel and
/// match any distance — electrical errors have no meaningful location).
pub fn account(
    violations: &[Violation],
    injected: &[InjectedError],
    tolerance: i64,
) -> ErrorRegions {
    let mut matched_injected: HashSet<usize> = HashSet::new();
    let mut false_errors = 0usize;
    for v in violations {
        let cat = category_of(v);
        let mut matched = false;
        for (idx, inj) in injected.iter().enumerate() {
            if inj.category != cat {
                continue;
            }
            let loc_ok = match (&v.location, inj.location.is_degenerate()) {
                (_, true) => true, // location-less ground truth (ERC)
                (Some(loc), false) => loc
                    .inflate(tolerance)
                    .map(|l| l.touches(&inj.location))
                    .unwrap_or(false),
                (None, false) => false,
            };
            if loc_ok {
                matched_injected.insert(idx);
                matched = true;
                // Keep scanning: one violation may witness several injected
                // errors at the same spot.
            }
        }
        if !matched {
            false_errors += 1;
        }
    }
    ErrorRegions {
        real_flagged: matched_injected.len(),
        unchecked: injected.len() - matched_injected.len(),
        false_errors,
        reported: violations.len(),
        injected: injected.len(),
    }
}

/// Formats a human-readable violation report grouped by stage.
pub fn format_report(violations: &[Violation]) -> String {
    let mut s = String::new();
    let stages = [
        CheckStage::Elements,
        CheckStage::PrimitiveSymbols,
        CheckStage::Connections,
        CheckStage::NetList,
        CheckStage::Interactions,
        CheckStage::Composition,
    ];
    let _ = writeln!(s, "{} violation(s)", violations.len());
    for stage in stages {
        let of_stage: Vec<&Violation> = violations.iter().filter(|v| v.stage == stage).collect();
        if of_stage.is_empty() {
            continue;
        }
        let _ = writeln!(s, "== {} ({})", stage, of_stage.len());
        for v in of_stage {
            let _ = writeln!(s, "   {v}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violations::ViolationKind;

    fn width_violation(x: i64) -> Violation {
        Violation {
            stage: CheckStage::Elements,
            kind: ViolationKind::Width {
                layer: "metal".into(),
                measured: 700,
                required: 750,
            },
            location: Some(Rect::new(x, 0, x + 100, 100)),
            context: String::new(),
        }
    }

    #[test]
    fn perfect_checker_accounting() {
        let injected = vec![InjectedError {
            location: Rect::new(0, 0, 100, 100),
            category: "width",
            description: "narrowed wire".into(),
        }];
        let r = account(&[width_violation(0)], &injected, 100);
        assert_eq!(r.real_flagged, 1);
        assert_eq!(r.unchecked, 0);
        assert_eq!(r.false_errors, 0);
        assert_eq!(r.false_to_real_ratio(), 0.0);
        assert_eq!(r.coverage(), 1.0);
    }

    #[test]
    fn false_and_unchecked_errors() {
        let injected = vec![InjectedError {
            location: Rect::new(0, 0, 100, 100),
            category: "spacing",
            description: "nudged wire".into(),
        }];
        // Wrong category and far away: one false error, one unchecked.
        let r = account(&[width_violation(100_000)], &injected, 100);
        assert_eq!(r.real_flagged, 0);
        assert_eq!(r.unchecked, 1);
        assert_eq!(r.false_errors, 1);
        assert!(r.false_to_real_ratio().is_infinite());
        assert_eq!(r.coverage(), 0.0);
    }

    #[test]
    fn location_tolerance() {
        let injected = vec![InjectedError {
            location: Rect::new(300, 0, 400, 100),
            category: "width",
            description: "near miss".into(),
        }];
        // 200 away from the violation bbox: tolerance 250 matches,
        // tolerance 150 does not.
        let r = account(&[width_violation(0)], &injected, 250);
        assert_eq!(r.real_flagged, 1);
        let strict = account(&[width_violation(0)], &injected, 150);
        assert_eq!(strict.real_flagged, 0);
    }

    #[test]
    fn erc_ground_truth_matches_without_location() {
        let injected = vec![InjectedError {
            location: Rect::new(0, 0, 0, 0),
            category: "erc",
            description: "power-ground short".into(),
        }];
        let v = Violation {
            stage: CheckStage::Composition,
            kind: ViolationKind::Erc {
                rule: diic_netlist::ErcRule::PowerGroundShort,
                detail: "net x".into(),
            },
            location: None,
            context: "x".into(),
        };
        let r = account(&[v], &injected, 0);
        assert_eq!(r.real_flagged, 1);
        assert_eq!(r.false_errors, 0);
    }

    #[test]
    fn merge_canonical_equals_full_sort() {
        // Interleaved stages, duplicate violations, empty sides: the
        // linear merge must reproduce canonical_sort of the
        // concatenation byte for byte.
        let spacing = |x: i64| Violation {
            stage: CheckStage::Interactions,
            kind: ViolationKind::Spacing {
                layer_a: "metal".into(),
                layer_b: "metal".into(),
                measured: 500,
                required: 750,
                same_net: false,
            },
            location: Some(Rect::new(x, 0, x + 10, 10)),
            context: String::new(),
        };
        let cases: Vec<(Vec<Violation>, Vec<Violation>)> = vec![
            (vec![], vec![]),
            (vec![width_violation(0)], vec![]),
            (vec![], vec![spacing(5)]),
            (
                vec![width_violation(0), width_violation(50), spacing(10)],
                vec![width_violation(20), spacing(0), spacing(10)],
            ),
        ];
        for (mut kept, mut fresh) in cases {
            canonical_sort(&mut kept);
            canonical_sort(&mut fresh);
            let mut expect = kept.clone();
            expect.extend(fresh.iter().cloned());
            canonical_sort(&mut expect);
            assert_eq!(merge_canonical(kept, fresh), expect);
        }
    }

    #[test]
    fn report_formatting() {
        let text = format_report(&[width_violation(0)]);
        assert!(text.contains("1 violation"));
        assert!(text.contains("== elements"));
    }
}
