//! Library mode: batch verification of many cells over shared,
//! content-keyed caches.
//!
//! A standard-cell library run verifies thousands of cell *variants*
//! against one technology. A loop of standalone [`crate::check`] calls
//! rebuilds three things from scratch per cell that are invariant or
//! shareable across the batch:
//!
//! 1. the **technology-derived constants** — rule reach, interaction
//!    cell size, device-forming layer pairs — recomputed by walking the
//!    whole rule deck on every call ([`BoundTechnology`] hoists them to
//!    once per technology);
//! 2. the **hierarchical interaction candidate cache**, keyed per run
//!    by scope identity (`SymbolId`), so identical subcells appearing
//!    in *sibling* variants are searched once per variant instead of
//!    once per library ([`LibraryCache`] re-keys the fills by
//!    definition **content hash** and shares them across cells);
//! 3. the **string interner**, rebuilt cold per cell even though
//!    sibling variants intern nearly identical path / net-key / device
//!    vocabularies (the batch driver seeds each cell's view from a
//!    long-lived per-worker interner, compacted between cells past a
//!    growth budget — [`crate::StringInterner::compact_stale`]).
//!
//! [`check_library`] schedules cells across the shared deterministic
//! worker pool ([`crate::parallel::run_ordered_with_state`]) —
//! cell-granular, results merged in input order — and emits every
//! cell's findings through its own [`Sink`]. The contract that makes
//! the sharing safe to adopt is **per-cell byte-identity**: each cell's
//! violations, net list, and interaction statistics are identical to a
//! standalone [`crate::check`] of that cell, for any worker count, with
//! or without interner compaction. The eleventh differential leg
//! (`tests/library.rs`) pins this on generated faulted libraries.
//!
//! Why identity survives each shared piece:
//!
//! * the [`BoundTechnology`] values equal the per-run computations by
//!   construction (same pure functions of the same technology);
//! * a shared cache row is only reused under a key that hashes the
//!   scopes' **normalized bbox sequences** (plus the bound-technology
//!   revision) — precisely the inputs the fill is a pure function of —
//!   so a hit returns the bytes a local fill would have produced, and
//!   the *per-cell* plan-phase hit/miss counters are untouched
//!   (cross-cell hits are batch-level statistics, counted here);
//! * interner handle values differ when a cell starts from a warm
//!   dictionary, but handles never reach rendered output: violations
//!   materialize their strings at creation and the net list
//!   canonicalises by key *strings* (see `netgen`'s byte-identity
//!   contract), so a seeded view renders identically.

use crate::binding::StringInterner;
use crate::checker::{CheckOptions, CheckReport};
use crate::engine::{CheckContext, Sink, StageEngine, StageTime};
use crate::interact::{interaction_cell_size, max_rule_range, InteractStats};
use crate::parallel::{effective_parallelism, run_ordered_with_state};
use diic_cif::Layout;
use diic_geom::Coord;
use diic_tech::{LayerId, Technology};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// BoundTechnology: per-technology constants, computed once.
// ---------------------------------------------------------------------

/// A technology with its interaction-scale constants precomputed: rule
/// reach ([`max_rule_range`]), grid cell size
/// ([`interaction_cell_size`]), and the device-forming layer pairs —
/// everything `check_interactions` otherwise re-derives by walking the
/// rule deck on every call.
///
/// Each binding carries a process-unique `revision` (a monotone
/// counter) that the content-keyed [`LibraryCache`] folds into its
/// hash keys, so fills computed under one technology can never be
/// served under another — including a *mutated* copy of the same deck,
/// which gets a fresh binding and therefore a fresh revision.
#[derive(Debug, Clone)]
pub struct BoundTechnology {
    max_rule_range: Coord,
    cell_size: Coord,
    forming: HashSet<(LayerId, LayerId)>,
    revision: u64,
}

impl BoundTechnology {
    /// Precomputes the interaction constants for `tech`.
    pub fn new(tech: &Technology) -> Self {
        static NEXT_REVISION: AtomicU64 = AtomicU64::new(1);
        BoundTechnology {
            max_rule_range: max_rule_range(tech),
            cell_size: interaction_cell_size(tech),
            forming: crate::connect::device_forming_pairs(tech),
            revision: NEXT_REVISION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The precomputed [`max_rule_range`].
    pub fn max_rule_range(&self) -> Coord {
        self.max_rule_range
    }

    /// The precomputed [`interaction_cell_size`].
    pub fn cell_size(&self) -> Coord {
        self.cell_size
    }

    /// The precomputed device-forming layer pairs
    /// (`connect::device_forming_pairs`).
    pub fn forming(&self) -> &HashSet<(LayerId, LayerId)> {
        &self.forming
    }

    /// This binding's process-unique revision stamp.
    pub fn revision(&self) -> u64 {
        self.revision
    }
}

// ---------------------------------------------------------------------
// Content hashing.
// ---------------------------------------------------------------------

/// 128-bit content hasher for cache keys: two independent 64-bit
/// streams (FNV-1a and a rotate/multiply mix) over the same word
/// sequence. A collision would silently serve one definition's
/// candidate fill for another, so the key space is wide enough that
/// the birthday bound on a 10⁴-entry cache is negligible.
#[derive(Clone, Copy)]
pub(crate) struct ContentHash {
    a: u64,
    b: u64,
}

impl ContentHash {
    pub(crate) fn new() -> Self {
        ContentHash {
            a: 0xcbf2_9ce4_8422_2325, // FNV-1a offset basis
            b: 0x9e37_79b9_7f4a_7c15, // golden-ratio constant
        }
    }

    pub(crate) fn word(&mut self, w: u64) {
        self.a = (self.a ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b.rotate_left(23) ^ w).wrapping_mul(0xff51_afd7_ed55_8ccd);
    }

    pub(crate) fn coord(&mut self, c: Coord) {
        self.word(c as u64);
    }

    pub(crate) fn digest(self) -> (u64, u64) {
        (self.a, self.b)
    }
}

// ---------------------------------------------------------------------
// LibraryCache: content-keyed candidate fills shared across cells.
// ---------------------------------------------------------------------

/// Concurrent content-keyed store of hierarchical candidate fills,
/// shared by every cell in a library batch.
///
/// The per-run hierarchical cache (`interact::hierarchical_plan_fill`)
/// dedups fills *within one cell* by scope identity. This cache sits
/// underneath it: each distinct fill job additionally looks up a
/// 128-bit hash of the definition **content** (the scopes' normalized
/// bbox sequences + the [`BoundTechnology::revision`]), so the same
/// subcell appearing in a sibling variant — a different `Layout`, a
/// different `SymbolId` space — reuses the identical fill bytes. Rows
/// are held behind [`Arc`], so a hit shares without copying.
///
/// Per-cell `InteractStats::cache_hits` / `cache_misses` keep their
/// standalone (plan-phase, within-cell) meaning; cross-cell sharing is
/// counted here and surfaced in [`LibraryStats`].
#[derive(Debug, Default)]
pub struct LibraryCache {
    map: Mutex<FillMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Content key → shared candidate-pair fill (shard-local index pairs).
type FillMap = HashMap<(u64, u64), Arc<Vec<(usize, usize)>>>;

impl LibraryCache {
    /// An empty cache.
    pub fn new() -> Self {
        LibraryCache::default()
    }

    /// Returns the fill stored under `key`, computing and inserting it
    /// via `fill` on a miss. The fill runs **outside** the lock — two
    /// workers racing on the same fresh key may both compute the (pure,
    /// identical) value; the first insert wins and the loser's copy is
    /// dropped, counted as a hit.
    pub(crate) fn get_or_fill<F>(&self, key: (u64, u64), fill: F) -> Arc<Vec<(usize, usize)>>
    where
        F: FnOnce() -> Vec<(usize, usize)>,
    {
        // invariant (this and below): a poisoned mutex means another
        // worker panicked mid-insert; the batch is already dead.
        if let Some(hit) = self.map.lock().expect("library cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        let value = Arc::new(fill());
        let mut map = self.map.lock().expect("library cache poisoned");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(e.get())
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                v.insert(Arc::clone(&value));
                value
            }
        }
    }

    /// Cross-cell cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cross-cell cache misses (= distinct fills computed) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct fills currently stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("library cache poisoned").len()
    }

    /// Whether the cache holds no fills yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total candidate pairs held across all stored fills.
    pub fn pair_count(&self) -> u64 {
        self.map
            .lock()
            .expect("library cache poisoned")
            .values()
            .map(|v| v.len() as u64)
            .sum()
    }
}

/// The long-lived shared state of a library batch: one
/// [`BoundTechnology`] plus one [`LibraryCache`]. Build it once per
/// technology ([`LibrarySession::new`]) and feed any number of
/// [`check_library_in`] batches through it — the cache stays warm
/// across batches.
#[derive(Debug)]
pub struct LibrarySession {
    /// The precomputed technology constants.
    pub bound: BoundTechnology,
    /// The shared content-keyed candidate cache.
    pub cache: LibraryCache,
}

impl LibrarySession {
    /// A fresh session for `tech`. Every batch fed through this session
    /// must check against the *same* technology — the cache keys are
    /// stamped with this binding's revision.
    pub fn new(tech: &Technology) -> Self {
        LibrarySession {
            bound: BoundTechnology::new(tech),
            cache: LibraryCache::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Options, profile, stats, report.
// ---------------------------------------------------------------------

/// Options for a library batch.
#[derive(Debug, Clone)]
pub struct LibraryOptions {
    /// Per-cell check options. `parallelism` here is the *inner* worker
    /// count each cell's stages use — the default of 1 keeps each cell
    /// serial and lets the outer cell-granular scheduling own the
    /// cores, which is the right shape for thousands of small cells.
    pub cell: CheckOptions,
    /// Outer worker count: how many cells check concurrently. `0` = all
    /// available cores (via [`effective_parallelism`]).
    pub parallelism: usize,
    /// Seed each cell's view from a long-lived per-worker interner
    /// (warm path/net-key/device vocabulary). Off = every cell starts
    /// cold, exactly like standalone [`crate::check`]. Either setting
    /// is byte-identical in rendered output.
    pub shared_interner: bool,
    /// Interner growth budget in heap bytes: after a cell, a worker
    /// whose interner exceeds this compacts away entries not used for
    /// [`Self::interner_keep_epochs`] cells
    /// ([`StringInterner::compact_stale`]). `0` compacts after every
    /// cell.
    pub interner_budget_bytes: usize,
    /// How many cells (epochs) an interned string survives unused
    /// before compaction evicts it.
    pub interner_keep_epochs: u32,
}

impl Default for LibraryOptions {
    fn default() -> Self {
        LibraryOptions {
            cell: CheckOptions {
                // Cells are hierarchical designs; the content-keyed
                // cache only sees fills the hierarchical search plans.
                hierarchical: true,
                ..CheckOptions::default()
            },
            parallelism: 0,
            shared_interner: true,
            interner_budget_bytes: 4 << 20,
            interner_keep_epochs: 2,
        }
    }
}

/// Aggregated wall-clock profile of a batch: per-stage sums across all
/// cells plus the per-cell wall-clock distribution — batch hot spots
/// without a profiler run.
#[derive(Debug, Clone, Default)]
pub struct BatchProfile {
    /// Summed duration per stage name, in first-seen stage order.
    pub stage_totals: Vec<(String, Duration)>,
    /// Per-cell wall clock, in input (cell) order.
    pub cell_wall: Vec<Duration>,
}

impl BatchProfile {
    /// Folds one cell's stage profile and wall clock into the batch.
    pub fn absorb(&mut self, profile: &[StageTime], wall: Duration) {
        for st in profile {
            match self.stage_totals.iter_mut().find(|(n, _)| *n == st.name) {
                Some((_, d)) => *d += st.duration,
                None => self.stage_totals.push((st.name.clone(), st.duration)),
            }
        }
        self.cell_wall.push(wall);
    }

    /// Total wall clock summed over cells (not elapsed batch time —
    /// cells overlap under the outer pool).
    pub fn total_cell_wall(&self) -> Duration {
        self.cell_wall.iter().sum()
    }

    /// The `q`-quantile (0..=100) of per-cell wall clock, by the
    /// nearest-rank method. Zero when the batch is empty.
    pub fn percentile(&self, q: u32) -> Duration {
        if self.cell_wall.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.cell_wall.clone();
        sorted.sort_unstable();
        let rank = (q as usize * sorted.len()).div_ceil(100);
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// Median per-cell wall clock.
    pub fn p50(&self) -> Duration {
        self.percentile(50)
    }

    /// 99th-percentile per-cell wall clock.
    pub fn p99(&self) -> Duration {
        self.percentile(99)
    }
}

/// Batch-level statistics: what the shared state saved and what it
/// cost.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LibraryStats {
    /// Cells checked.
    pub cells: usize,
    /// Cross-cell candidate-fill cache hits ([`LibraryCache::hits`]).
    pub shared_cache_hits: u64,
    /// Cross-cell candidate-fill cache misses (= distinct fills).
    pub shared_cache_misses: u64,
    /// Distinct fills resident in the shared cache after the batch.
    pub shared_cache_entries: usize,
    /// Candidate pairs resident in the shared cache after the batch.
    pub shared_cache_pairs: u64,
    /// Interner compactions fired across all workers.
    pub interner_compactions: u64,
    /// Largest per-worker interner entry count observed after any cell.
    pub interner_peak_strings: usize,
    /// Largest per-worker interner heap footprint (bytes) observed
    /// after any cell.
    pub interner_peak_bytes: usize,
    /// Per-cell interaction statistics summed over the batch (each
    /// cell's own stats stay byte-identical to its standalone run; this
    /// is their fold).
    pub interact: InteractStats,
}

/// Everything a batch run produces: per-cell reports (input order),
/// the per-cell sinks the caller's factory built, the aggregated
/// profile, and the batch statistics.
#[derive(Debug)]
pub struct LibraryReport<S> {
    /// One [`CheckReport`] per input layout, in input order — each
    /// byte-identical to a standalone [`crate::check`] of that layout.
    pub reports: Vec<CheckReport>,
    /// The per-cell sinks, in input order (each saw exactly its cell's
    /// violations).
    pub sinks: Vec<S>,
    /// Aggregated per-stage and per-cell timing.
    pub profile: BatchProfile,
    /// Batch-level shared-state statistics.
    pub stats: LibraryStats,
}

// ---------------------------------------------------------------------
// The batch driver.
// ---------------------------------------------------------------------

/// Checks every layout in `layouts` against `tech` in one batch over a
/// fresh [`LibrarySession`]. See [`check_library_in`] for the shape of
/// the run; use that entry point directly to keep the session's cache
/// warm across multiple batches.
///
/// `make_sink(i)` builds the sink cell `i` emits through; the sinks
/// come back in [`LibraryReport::sinks`]. For plain buffered reports
/// (violations in [`CheckReport::violations`], mirroring
/// [`crate::check`]) use [`check_library_buffered`].
pub fn check_library<S, F>(
    layouts: &[Layout],
    tech: &Technology,
    options: &LibraryOptions,
    make_sink: F,
) -> LibraryReport<S>
where
    S: Sink + Send,
    F: Fn(usize) -> S + Sync,
{
    let session = LibrarySession::new(tech);
    check_library_in(&session, layouts, tech, options, make_sink)
}

/// [`check_library`] over a caller-owned [`LibrarySession`] — the
/// session's content-keyed cache persists across calls, so successive
/// batches (library revisions, incremental variant drops) start warm.
/// `tech` must be the technology the session was built from.
///
/// Cells are scheduled cell-granular across the shared deterministic
/// worker pool; each worker carries one long-lived [`StringInterner`]
/// (when [`LibraryOptions::shared_interner`] is on) whose epoch
/// advances per cell and which compacts past the growth budget.
/// Results merge in input order, so reports, sinks, and the profile
/// are deterministic for any worker count; per-cell report bytes are
/// identical to standalone [`crate::check`] runs.
pub fn check_library_in<S, F>(
    session: &LibrarySession,
    layouts: &[Layout],
    tech: &Technology,
    options: &LibraryOptions,
    make_sink: F,
) -> LibraryReport<S>
where
    S: Sink + Send,
    F: Fn(usize) -> S + Sync,
{
    struct WorkerState {
        strings: StringInterner,
        compactions: u64,
        peak_strings: usize,
        peak_bytes: usize,
    }

    let workers = effective_parallelism(options.parallelism);
    let (cells, states) = run_ordered_with_state(
        layouts.len(),
        workers,
        || WorkerState {
            strings: StringInterner::default(),
            compactions: 0,
            peak_strings: 0,
            peak_bytes: 0,
        },
        |state: &mut WorkerState, i| {
            let t0 = Instant::now();
            let mut sink = make_sink(i);
            let engine = StageEngine::diic_pipeline();
            let mut ctx = CheckContext::new_with_sink(&layouts[i], tech, &options.cell, &mut sink)
                .with_library(&session.bound, &session.cache);
            if options.shared_interner {
                // Hand the worker's warm dictionary to this cell; it
                // comes back (with the cell's additions) after the run.
                let mut seed = std::mem::take(&mut state.strings);
                seed.advance_epoch();
                ctx = ctx.with_seed_strings(seed);
            }
            let profile = engine.run(&mut ctx);
            if options.shared_interner {
                let mut strings = ctx.take_strings().unwrap_or_default();
                state.peak_strings = state.peak_strings.max(strings.len());
                state.peak_bytes = state.peak_bytes.max(strings.heap_bytes());
                if strings.heap_bytes() > options.interner_budget_bytes {
                    // The remap is dropped: handles into the evicted
                    // generation live only inside finished views.
                    strings.compact_stale(options.interner_keep_epochs);
                    state.compactions += 1;
                }
                state.strings = strings;
            }
            let report = ctx.into_report(profile);
            (report, sink, t0.elapsed())
        },
    );

    let mut profile = BatchProfile::default();
    let mut stats = LibraryStats {
        cells: layouts.len(),
        shared_cache_hits: session.cache.hits(),
        shared_cache_misses: session.cache.misses(),
        shared_cache_entries: session.cache.len(),
        shared_cache_pairs: session.cache.pair_count(),
        ..LibraryStats::default()
    };
    for state in &states {
        stats.interner_compactions += state.compactions;
        stats.interner_peak_strings = stats.interner_peak_strings.max(state.peak_strings);
        stats.interner_peak_bytes = stats.interner_peak_bytes.max(state.peak_bytes);
    }
    let mut reports = Vec::with_capacity(cells.len());
    let mut sinks = Vec::with_capacity(cells.len());
    for (report, sink, wall) in cells {
        profile.absorb(&report.stage_profile, wall);
        stats.interact.absorb(&report.interact_stats);
        reports.push(report);
        sinks.push(sink);
    }
    LibraryReport {
        reports,
        sinks,
        profile,
        stats,
    }
}

/// [`check_library`] with plain buffering sinks: every cell's
/// violations end up in its [`CheckReport::violations`], exactly like
/// a loop of [`crate::check`] calls — the drop-in comparison point.
/// (The returned sinks are already drained: each cell's
/// [`CheckReport`] pulled its buffered violations on completion, the
/// same contract as [`crate::check_with_sink`].)
pub fn check_library_buffered(
    layouts: &[Layout],
    tech: &Technology,
    options: &LibraryOptions,
) -> LibraryReport<crate::engine::DiagnosticSink> {
    check_library(layouts, tech, options, |_| {
        crate::engine::DiagnosticSink::new()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_technology_matches_per_run_values() {
        let tech = diic_tech::nmos::nmos_technology();
        let bound = BoundTechnology::new(&tech);
        assert_eq!(bound.max_rule_range(), max_rule_range(&tech));
        assert_eq!(bound.cell_size(), interaction_cell_size(&tech));
        assert_eq!(
            bound.forming(),
            &crate::connect::device_forming_pairs(&tech)
        );
        let again = BoundTechnology::new(&tech);
        assert_ne!(bound.revision(), again.revision(), "revisions are unique");
    }

    #[test]
    fn cache_get_or_fill_counts_and_shares() {
        let cache = LibraryCache::new();
        let a = cache.get_or_fill((1, 2), || vec![(0, 1)]);
        let b = cache.get_or_fill((1, 2), || panic!("must not refill a stored key"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.pair_count(), 1);
        let c = cache.get_or_fill((3, 4), Vec::new);
        assert!(c.is_empty());
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn content_hash_separates_streams() {
        let mut x = ContentHash::new();
        let mut y = ContentHash::new();
        x.word(1);
        x.word(2);
        y.word(2);
        y.word(1);
        assert_ne!(x.digest(), y.digest(), "order must matter");
        let mut z = ContentHash::new();
        z.word(1);
        z.word(2);
        assert_eq!(x.digest(), z.digest(), "same sequence, same digest");
    }

    #[test]
    fn batch_profile_percentiles() {
        let mut p = BatchProfile::default();
        assert_eq!(p.p50(), Duration::ZERO);
        for ms in [5u64, 1, 3, 2, 4] {
            p.absorb(&[], Duration::from_millis(ms));
        }
        assert_eq!(p.p50(), Duration::from_millis(3));
        assert_eq!(p.p99(), Duration::from_millis(5));
        assert_eq!(p.percentile(0), Duration::from_millis(1));
        assert_eq!(p.total_cell_wall(), Duration::from_millis(15));
    }

    #[test]
    fn batch_profile_sums_stages_by_name() {
        let mut p = BatchProfile::default();
        let st = |n: &str, ms: u64| StageTime {
            name: n.to_string(),
            duration: Duration::from_millis(ms),
            violations: 0,
        };
        p.absorb(&[st("a", 1), st("b", 2)], Duration::from_millis(3));
        p.absorb(&[st("a", 10), st("b", 20)], Duration::from_millis(30));
        assert_eq!(
            p.stage_totals,
            vec![
                ("a".to_string(), Duration::from_millis(11)),
                ("b".to_string(), Duration::from_millis(22)),
            ]
        );
    }
}
