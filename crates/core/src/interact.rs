//! Stage 6 — "check interactions": spacing via the rule matrix (Fig. 12).
//!
//! "At this point all elements are checked, all primitive symbols are
//! checked, connections between the elements and symbols are checked, and
//! net identifiers are available for each element. What remains to be
//! checked are the interactions between elements and/or primitive symbols.
//! The checks which remain are only spacing checks."
//!
//! Each layer-pair case splits into subcases (Fig. 12): same-net pairs are
//! usually not checked at all (Fig. 5a — electrically equivalent), device
//! overrides specialise the verdicts (Figs. 5b/6), and a transistor's
//! un-netted parts are checked only against *unrelated* elements.
//!
//! The stage runs in two phases:
//!
//! 1. **candidate enumeration** — either a flat search over one grid
//!    index of all instantiated elements, or a hierarchical search that
//!    caches geometric candidate pairs per symbol (intra-instance) and
//!    per symbol-pair-with-relative-placement (inter-instance) —
//!    Manhattan transforms preserve distances, so one instance's
//!    geometry answers for all its repeats. Candidates are produced in
//!    a canonical order (ascending element-id pairs within each work
//!    unit, units in a fixed walk order). Both searches are parallel:
//!    the flat search fans element-range queries over one shared
//!    [`GridIndex`], and the hierarchical search plans its distinct
//!    cache fills up front (one job per unique symbol / unique
//!    symbol-pair-with-relative-placement), fills them across the
//!    worker pool, and assembles the canonical pair list from the
//!    filled caches — every fill is a pure function of its scope's
//!    element sets, so the cache contents match a serial run exactly.
//! 2. **pair evaluation** — the rule-matrix subcases and distance
//!    checks, embarrassingly parallel over the candidate list. With
//!    [`InteractOptions::parallelism`] > 1 the list is split into
//!    contiguous chunks evaluated on a scoped thread pool; chunk
//!    results are re-joined in chunk order, so serial and parallel
//!    runs yield **byte-identical** violation lists and statistics.
//!
//! # Tiled streaming (bounded candidate memory)
//!
//! Materialising the full candidate-pair list costs O(total pairs) of
//! memory — the binding constraint at million-element scale. With
//! [`InteractOptions::tiled`] (the default) the stage never holds the
//! whole list: the flat search walks a **deterministic tile iterator**
//! over the [`GridIndex`] ([`GridIndex::tiles`] — contiguous
//! insertion-order element ranges), and each worker owns one tile,
//! enumerates its pairs, evaluates them, and discards the buffer before
//! taking the next tile. A pair spanning two tiles is owned by its
//! **lower element's tile** (the enumeration keeps only `j > i`), so
//! every pair is enumerated and counted exactly once across tiles. The
//! hierarchical search streams the same way with its natural tiles —
//! one filled cache row per scope / scope pair. Tile results merge
//! positionally ([`run_ordered`]), and within a tile pairs come out in
//! the same canonical order the buffered list would hold, so tiled and
//! buffered runs — serial or parallel — are **byte-identical**; only
//! [`InteractStats::peak_candidate_buffer`] records the difference:
//! the widest tile instead of the total pair count.
//!
//! # Same-mask conflict graphs (multi-patterning)
//!
//! The first post-paper check family: a technology may declare a
//! `same_mask` distance per layer ([`diic_tech::RuleSet::same_mask`]).
//! Two features on that layer closer than the distance — but not
//! touching (touching features print as one mask feature) — cannot
//! share a mask, which makes them an edge of the layer's **conflict
//! graph**. A two-mask (double-patterning) decomposition is a
//! 2-colouring of that graph, which exists iff the graph is bipartite;
//! every **odd cycle** is therefore an undecomposable cluster,
//! reported as one [`ViolationKind::MaskOddCycle`] anchored at the odd
//! component's closest conflicting edge. Edges are collected during
//! the normal pair evaluation (geometrically — net topology and device
//! membership do not excuse a mask conflict) in every search shape
//! (flat/hierarchical × tiled/buffered), then analysed once at the end
//! of the run; [`check_same_mask`] runs the same analysis standalone,
//! which is how the incremental session recomputes the (global, and
//! therefore un-clippable) property after an edit.

use crate::binding::ChipView;
use crate::library::{BoundTechnology, ContentHash, LibraryCache};
use crate::netgen::NetgenResult;
use crate::parallel::{effective_parallelism, run_ordered};
use crate::violations::{CheckStage, Violation, ViolationKind};
use diic_cif::{Item, Layout, SymbolId};
use diic_geom::{Coord, GridIndex, Rect, SizingMode, Transform};
use diic_tech::{LayerId, Technology};
use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Options for the interaction stage (ablation knobs).
#[derive(Debug, Clone, Copy)]
pub struct InteractOptions {
    /// Suppress checks between same-net elements (the DIIC behaviour).
    /// Off = check every pair like a topology-blind checker (Fig. 5a's
    /// false errors return).
    pub same_net_suppression: bool,
    /// Distance metric: Euclidean (the physical intent) or orthogonal
    /// (the L∞ expand-check-overlap baseline with its Fig. 4 corner
    /// pathology).
    pub metric: SizingMode,
    /// Use the hierarchical candidate cache.
    pub hierarchical: bool,
    /// Worker threads for candidate evaluation. `1` = serial, `0` = all
    /// available cores. Any value produces identical reports.
    pub parallelism: usize,
    /// Stream candidate pairs tile by tile instead of materialising the
    /// full pair list (see the module docs) — candidate memory is then
    /// bounded by one tile per live worker (`parallelism` × the widest
    /// tile), not by the chip's total pair count. On by default; either
    /// setting produces byte-identical violations and (peak buffer
    /// aside) statistics.
    pub tiled: bool,
    /// Elements per tile for the tiled **flat** search (`0` = the
    /// built-in default). The hierarchical search tiles by scope /
    /// scope pair regardless.
    pub tile_elements: usize,
}

impl Default for InteractOptions {
    fn default() -> Self {
        InteractOptions {
            same_net_suppression: true,
            metric: SizingMode::Euclidean,
            hierarchical: false,
            parallelism: 1,
            tiled: true,
            tile_elements: 0,
        }
    }
}

/// Elements per tile when [`InteractOptions::tile_elements`] is left at
/// `0`: small enough that a tile's pair buffer stays cache-friendly,
/// large enough that tile bookkeeping is noise.
pub const DEFAULT_TILE_ELEMENTS: usize = 512;

impl InteractOptions {
    /// The effective flat-search tile width (`0` resolved to
    /// [`DEFAULT_TILE_ELEMENTS`]).
    pub fn effective_tile_elements(&self) -> usize {
        if self.tile_elements == 0 {
            DEFAULT_TILE_ELEMENTS
        } else {
            self.tile_elements
        }
    }
}

/// Counters exposing how much work the topology saves (Fig. 12 pruning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InteractStats {
    /// Candidate pairs produced by the search.
    pub candidate_pairs: u64,
    /// Pairs with no rule in the matrix.
    pub no_rule: u64,
    /// Pairs suppressed because the elements share a net.
    pub same_net_suppressed: u64,
    /// Pairs suppressed because a transistor and its own terminals are
    /// related.
    pub related_suppressed: u64,
    /// Pairs waived by a device override (Fig. 6b).
    pub override_waived: u64,
    /// Distance evaluations performed.
    pub distance_checks: u64,
    /// Violations reported.
    pub violations: u64,
    /// Hierarchical cache hits (instance pairs answered from cache).
    pub cache_hits: u64,
    /// Hierarchical cache misses (instance pairs searched geometrically).
    pub cache_misses: u64,
    /// The largest **single** candidate-pair buffer held at any point:
    /// the full pair count for a buffered run, the widest tile for a
    /// tiled one — the number the bounded-memory refactor bounds. In a
    /// parallel tiled run, up to `parallelism` such buffers are alive
    /// concurrently (one per worker), so total concurrent candidate
    /// memory is bounded by workers × this value.
    pub peak_candidate_buffer: u64,
}

impl InteractStats {
    /// Merges another stats record into this one (per-worker / per-tile
    /// counters). Every counter is a sum except
    /// [`InteractStats::peak_candidate_buffer`], which is a maximum —
    /// both folds are commutative and associative, so merging stays
    /// order-independent.
    pub fn absorb(&mut self, other: &InteractStats) {
        self.candidate_pairs += other.candidate_pairs;
        self.no_rule += other.no_rule;
        self.same_net_suppressed += other.same_net_suppressed;
        self.related_suppressed += other.related_suppressed;
        self.override_waived += other.override_waived;
        self.distance_checks += other.distance_checks;
        self.violations += other.violations;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.peak_candidate_buffer = self.peak_candidate_buffer.max(other.peak_candidate_buffer);
    }
}

/// The longest reach of any spacing rule or device override in the
/// technology: the radius within which two elements can possibly
/// interact. Interaction searches inflate query windows by this much.
pub fn max_rule_range(tech: &Technology) -> Coord {
    let mut m = 1;
    for (_, _, rule) in tech.rules().entries() {
        m = m
            .max(rule.diff_net)
            .max(rule.same_net.unwrap_or(0))
            .max(rule.unrelated_device.unwrap_or(0));
    }
    for dev in tech.devices() {
        for o in &dev.overrides {
            m = m.max(o.spacing.unwrap_or(0));
        }
    }
    for (_, d) in tech.rules().same_mask_entries() {
        m = m.max(d);
    }
    m
}

/// Grid cell size for interaction-scale spatial indexes, derived from
/// the technology's rule reach (a few times the largest rule, floored
/// so degenerate rule decks still get usable cells, saturated so
/// pathological near-`Coord::MAX` rules cannot overflow) instead of a
/// magic constant.
pub fn interaction_cell_size(tech: &Technology) -> Coord {
    max_rule_range(tech).saturating_mul(4).max(1000)
}

/// Runs the interaction checks.
pub fn check_interactions(
    view: &ChipView,
    tech: &Technology,
    nets: &NetgenResult,
    layout: &Layout,
    options: &InteractOptions,
) -> (Vec<Violation>, InteractStats) {
    check_interactions_impl(view, tech, nets, layout, options, None)
}

/// Library-mode [`check_interactions`]: the technology constants come
/// precomputed from the [`BoundTechnology`] (equal by construction to
/// the per-run values) and the hierarchical candidate fills are shared
/// **across cells** through the content-keyed [`LibraryCache`]. The
/// violation list and the per-cell statistics are byte-identical to
/// [`check_interactions`] — cross-cell cache traffic is counted on the
/// cache itself, not in [`InteractStats`].
pub fn check_interactions_shared(
    view: &ChipView,
    tech: &Technology,
    nets: &NetgenResult,
    layout: &Layout,
    options: &InteractOptions,
    bound: &BoundTechnology,
    cache: &LibraryCache,
) -> (Vec<Violation>, InteractStats) {
    check_interactions_impl(view, tech, nets, layout, options, Some((bound, cache)))
}

fn check_interactions_impl(
    view: &ChipView,
    tech: &Technology,
    nets: &NetgenResult,
    layout: &Layout,
    options: &InteractOptions,
    shared: Option<(&BoundTechnology, &LibraryCache)>,
) -> (Vec<Violation>, InteractStats) {
    let mut stats = InteractStats::default();
    let (max_range, cell, forming) = match shared {
        Some((bound, _)) => (
            bound.max_rule_range(),
            bound.cell_size(),
            Cow::Borrowed(bound.forming()),
        ),
        None => (
            max_rule_range(tech),
            interaction_cell_size(tech),
            Cow::Owned(crate::connect::device_forming_pairs(tech)),
        ),
    };
    let workers = effective_parallelism(options.parallelism);

    let cx = EvalCx {
        view,
        tech,
        nets,
        options,
        forming,
    };
    let shared_cache = shared.map(|(bound, cache)| (cache, bound.revision()));
    let (mut violations, edges) = if options.hierarchical {
        let plan = hierarchical_plan_fill(
            view,
            layout,
            max_range,
            cell,
            workers,
            &mut stats,
            shared_cache,
        );
        if options.tiled {
            hierarchical_tiled(&cx, &plan, workers, &mut stats)
        } else {
            let pairs = assemble_pairs(&plan);
            stats.candidate_pairs = pairs.len() as u64;
            stats.peak_candidate_buffer = pairs.len() as u64;
            evaluate_candidates(&cx, &pairs, workers, &mut stats)
        }
    } else if options.tiled {
        flat_tiled(&cx, max_range, cell, workers, &mut stats)
    } else {
        let pairs = flat_candidates(view, max_range, cell, workers);
        stats.candidate_pairs = pairs.len() as u64;
        stats.peak_candidate_buffer = pairs.len() as u64;
        evaluate_candidates(&cx, &pairs, workers, &mut stats)
    };
    violations.extend(mask_cycle_violations(view, tech, options.metric, edges));
    stats.violations = violations.len() as u64;
    (violations, stats)
}

/// Runs the interaction checks **scoped to a clip region**: only element
/// pairs within rule reach of the clip are searched and evaluated, and
/// only violations whose marker touches the clip are reported.
///
/// The scoping is *sound* for incremental re-checking because of two
/// reach bounds: a spacing violation's marker lies within the pair's gap
/// distance (≤ [`max_rule_range`]) of **both** elements, so every
/// violation anchored in the clip comes from a pair whose elements both
/// sit within one rule reach of it — exactly the element set searched
/// here. Conversely, violations whose marker misses the clip are
/// dropped: in an edit session their unchanged copies live on in the
/// cached report. Candidates are enumerated with the flat grid search;
/// the violation *multiset* equals the hierarchical search's (the
/// four-way differential guarantee), so a canonically sorted patched
/// report matches a full run under either engine.
pub fn check_interactions_clipped(
    view: &ChipView,
    tech: &Technology,
    nets: &NetgenResult,
    options: &InteractOptions,
    clip: &diic_geom::Region,
) -> (Vec<Violation>, InteractStats) {
    if clip.is_empty() {
        return (Vec::new(), InteractStats::default());
    }
    let max_range = max_rule_range(tech);
    let cell = interaction_cell_size(tech);

    // Grid over the clip's rects: bbox-vs-clip tests run against the
    // local neighbourhood instead of scanning every clip rect (a
    // whole-chip clip region can hold thousands).
    let mut clip_grid: GridIndex<()> = GridIndex::new(cell);
    for r in clip.rects() {
        clip_grid.insert(*r, ());
    }

    // Elements within one rule reach of the clip, in ascending id order
    // — a sweep down the dense bbox column.
    let ids: Vec<usize> = view
        .elements
        .bboxes()
        .iter()
        .enumerate()
        .filter(|(_, bbox)| {
            bbox.inflate(max_range)
                .map(|b| clip_grid.touches_any(&b))
                .unwrap_or(false)
        })
        .map(|(id, _)| id)
        .collect();
    check_interactions_among_clipped(view, tech, nets, options, &ids, &clip_grid)
}

/// The pre-scoped form of [`check_interactions_clipped`]: the caller
/// supplies the candidate element set (ascending ids — every element
/// within one rule reach of the clip; the incremental session derives
/// it from its persistent spatial index instead of scanning the whole
/// element list) **and** the grid over the clip's rects — which the
/// session also uses for its retraction predicate, so the two sides of
/// the retract/splice partition share one object by construction.
pub fn check_interactions_among_clipped(
    view: &ChipView,
    tech: &Technology,
    nets: &NetgenResult,
    options: &InteractOptions,
    ids: &[usize],
    clip_grid: &GridIndex<()>,
) -> (Vec<Violation>, InteractStats) {
    let mut stats = InteractStats::default();
    if ids.is_empty() {
        return (Vec::new(), stats);
    }
    let max_range = max_rule_range(tech);
    let cell = interaction_cell_size(tech);
    let workers = effective_parallelism(options.parallelism);

    let local = local_candidates(view, ids, max_range, cell);
    let pairs: Vec<(usize, usize)> = local
        .into_iter()
        .map(|(li, lj)| (ids[li], ids[lj]))
        .collect();
    stats.candidate_pairs = pairs.len() as u64;
    // The clipped search buffers its (already clip-bounded) pair list.
    stats.peak_candidate_buffer = pairs.len() as u64;

    let cx = EvalCx {
        view,
        tech,
        nets,
        options,
        forming: Cow::Owned(crate::connect::device_forming_pairs(tech)),
    };
    // Same-mask edges are discarded here: bipartiteness is a *global*
    // property of the conflict graph — a clip-local edge subset cannot
    // decide odd-cycle membership, and a marker-in-clip filter would
    // retract/splice the wrong cycles. Callers that need the
    // multi-patterning verdict after a scoped run recompute it with
    // [`check_same_mask`] (the incremental session does exactly that).
    let (mut violations, _edges) = evaluate_candidates(&cx, &pairs, workers, &mut stats);
    // Location-less violations count as inside every clip (they cannot
    // be anchored, so retraction and splicing must agree on them).
    violations.retain(|v| v.location.is_none_or(|l| clip_grid.touches_any(&l)));
    stats.violations = violations.len() as u64;
    (violations, stats)
}

// ---------------------------------------------------------------------
// Phase 1: candidate enumeration.
// ---------------------------------------------------------------------

/// Flat candidate search: one shared grid index over every instantiated
/// element, queried in parallel over contiguous element-id ranges. Each
/// range worker emits ascending `(i, j)` pairs with `i < j`; ranges are
/// concatenated in order, so the list is globally sorted and identical
/// for any worker count.
fn flat_candidates(
    view: &ChipView,
    max_range: Coord,
    cell: Coord,
    workers: usize,
) -> Vec<(usize, usize)> {
    let index = element_grid(view, cell);
    let n = view.elements.len();
    if workers <= 1 || n < 2 {
        return enumerate_range_pairs(view, &index, max_range, 0..n);
    }
    let chunk = n.div_ceil(workers);
    let chunks = n.div_ceil(chunk);
    run_ordered(chunks, workers, |k| {
        let lo = k * chunk;
        enumerate_range_pairs(view, &index, max_range, lo..(lo + chunk).min(n))
    })
    .into_iter()
    .flatten()
    .collect()
}

/// One grid index over every instantiated element's bbox, payload = id.
fn element_grid(view: &ChipView, cell: Coord) -> GridIndex<usize> {
    let mut index: GridIndex<usize> = GridIndex::new(cell);
    for (id, bbox) in view.elements.bboxes().iter().enumerate() {
        index.insert(*bbox, id);
    }
    index
}

/// Candidate pairs `(a.id, j)` with `j > a.id` for every element in
/// `range`, queried against the shared grid index — the **single**
/// enumeration body behind both the buffered per-worker ranges
/// ([`flat_candidates`]) and the tiled per-tile walks ([`flat_tiled`]),
/// so the byte-identity contract between the two paths cannot drift.
///
/// [`GridIndex::query`] returns ids in ascending insertion order
/// (documented and tested there), so the pairs come out already sorted
/// by `(a.id, j)`.
fn enumerate_range_pairs(
    view: &ChipView,
    index: &GridIndex<usize>,
    max_range: Coord,
    range: std::ops::Range<usize>,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (i, bbox) in view.elements.bboxes()[range.clone()].iter().enumerate() {
        let i = range.start + i;
        // invariant: max_range >= 0 (rule ranges are non-negative), and
        // inflate only fails on negative shrink past emptiness.
        let query = bbox
            .inflate(max_range)
            .expect("inflating by a positive range cannot fail");
        let near = index.query(&query).into_iter().copied().filter(|&j| j > i);
        out.extend(near.map(|j| (i, j)));
    }
    out
}

/// Tiled flat search: the same grid index as [`flat_candidates`], walked
/// through [`GridIndex::tiles`] — each tile job enumerates its element
/// range's pairs into a tile-local buffer, evaluates them, and drops the
/// buffer before the worker takes its next tile. Pairs come out in the
/// identical canonical order the buffered list holds (ascending
/// `(i, j)`, each pair owned by its lower element's tile), and the
/// positional tile merge keeps any worker count byte-identical.
fn flat_tiled(
    cx: &EvalCx<'_>,
    max_range: Coord,
    cell: Coord,
    workers: usize,
    stats: &mut InteractStats,
) -> (Vec<Violation>, Vec<MaskEdge>) {
    let view = cx.view;
    let index = element_grid(view, cell);
    let tiles: Vec<std::ops::Range<u32>> =
        index.tiles(cx.options.effective_tile_elements()).collect();
    let results = run_ordered(tiles.len(), workers, |k| {
        let range = (tiles[k].start as usize)..(tiles[k].end as usize);
        let pairs = enumerate_range_pairs(view, &index, max_range, range);
        evaluate_tile(cx, &pairs)
    });
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for (vs, es, tile_stats) in results {
        out.extend(vs);
        edges.extend(es);
        stats.absorb(&tile_stats);
    }
    (out, edges)
}

/// Evaluates one tile's pair buffer serially, returning its violations
/// and tile-local counters (`candidate_pairs` and the tile's buffer
/// width; the caller folds tiles together with
/// [`InteractStats::absorb`], which sums counts and maxes the peak).
fn evaluate_tile(
    cx: &EvalCx<'_>,
    pairs: &[(usize, usize)],
) -> (Vec<Violation>, Vec<MaskEdge>, InteractStats) {
    let mut tile_stats = InteractStats {
        candidate_pairs: pairs.len() as u64,
        peak_candidate_buffer: pairs.len() as u64,
        ..InteractStats::default()
    };
    let mut vs = Vec::new();
    let mut edges = Vec::new();
    for &(i, j) in pairs {
        evaluate_pair(cx, i, j, &mut vs, &mut edges, &mut tile_stats);
    }
    (vs, edges, tile_stats)
}

/// A top-level scope: one top-level call (with all elements instantiated
/// beneath it) or the loose top-level elements.
struct Scope {
    symbol: Option<SymbolId>,
    transform: Transform,
    element_ids: Vec<usize>,
    bbox: Option<Rect>,
}

/// The planned-and-filled hierarchical search, before pair assembly:
/// the scopes, which filled cache row feeds each scope (`intra_source`)
/// and each near scope pair (`inter_source`), and the filled rows
/// themselves (shard-local index pairs). A buffered run assembles the
/// full global pair list from this ([`assemble_pairs`]); a tiled run
/// streams one row at a time ([`hierarchical_tiled`]).
struct HierPlan {
    scopes: Vec<Scope>,
    intra_source: Vec<usize>,
    inter_source: Vec<(usize, usize, usize)>,
    /// Filled rows sit behind [`Arc`] so library-mode cache hits share
    /// one allocation across cells instead of copying the pair list.
    filled: Vec<Arc<Vec<(usize, usize)>>>,
}

/// Hierarchical candidate search with the paper's redundancy
/// elimination: geometric candidate pairs are cached per symbol
/// (intra-instance) and per symbol pair with relative placement
/// (inter-instance), so repeated instances are searched once. The
/// output order is canonical: intra-scope pairs in scope walk order,
/// then inter-scope pairs over the upper-triangular scope matrix.
///
/// The search runs in three deterministic steps so the cache fills can
/// be shared across threads:
///
/// 1. **plan** (serial, cheap) — walk the scopes and scope pairs in
///    canonical order, deduplicating cache keys into an ordered job
///    list and recording which job feeds each scope / scope pair (the
///    first occurrence of a key is the cache miss, later ones the
///    hits — identical counters to a serial fill);
/// 2. **fill** — run the distinct geometric searches across the worker
///    pool ([`run_ordered`]); each is a pure function of its scope's
///    element sets, so parallel fills return exactly the serial values;
/// 3. **assemble** (serial, cheap) — emit the canonical pair list from
///    the filled caches.
fn hierarchical_plan_fill(
    view: &ChipView,
    layout: &Layout,
    max_range: Coord,
    cell: Coord,
    workers: usize,
    stats: &mut InteractStats,
    shared: Option<(&LibraryCache, u64)>,
) -> HierPlan {
    // Group elements by top-level scope, in walk order (deterministic:
    // walk order is identical for every instance of the same symbol).
    let mut scopes: Vec<Scope> = Vec::new();
    let mut loose: Vec<usize> = Vec::new();
    let mut call_idx = 0usize;
    let mut path_to_scope: HashMap<String, usize> = HashMap::new();
    for item in layout.top_items() {
        if let Item::Call(c) = item {
            scopes.push(Scope {
                symbol: Some(c.target),
                transform: c.transform,
                element_ids: Vec::new(),
                bbox: None,
            });
            path_to_scope.insert(c.name.clone(), call_idx);
            call_idx += 1;
        }
    }
    for e in view.elements.iter() {
        let top = view.str(e.path()).split('.').next().unwrap_or("");
        if top.is_empty() {
            loose.push(e.id());
        } else if let Some(&s) = path_to_scope.get(top) {
            scopes[s].element_ids.push(e.id());
        } else {
            loose.push(e.id());
        }
    }
    scopes.push(Scope {
        symbol: None,
        transform: Transform::IDENTITY,
        element_ids: loose,
        bbox: None,
    });
    for s in &mut scopes {
        let mut bb: Option<Rect> = None;
        for &id in &s.element_ids {
            let b = view.elements.bboxes()[id];
            bb = Some(bb.map_or(b, |acc| acc.bounding_union(&b)));
        }
        s.bbox = bb;
    }

    // Step 1 — plan. Cache keys express "same geometry up to rigid
    // motion"; the first scope (pair) presenting a key owns the fill
    // job, later ones reuse its result.
    enum FillJob {
        /// Intra-scope search of the scope at this index.
        Intra(usize),
        /// Cross-scope search of the scope pair at these indices.
        Cross(usize, usize),
    }
    let mut jobs: Vec<FillJob> = Vec::new();

    // Intra-scope plan: scope walk order.
    let mut intra_key_to_job: HashMap<SymbolId, usize> = HashMap::new();
    let mut intra_source: Vec<usize> = Vec::with_capacity(scopes.len());
    for (si, scope) in scopes.iter().enumerate() {
        match scope.symbol {
            Some(sym) => {
                if let Some(&job) = intra_key_to_job.get(&sym) {
                    stats.cache_hits += 1;
                    intra_source.push(job);
                } else {
                    stats.cache_misses += 1;
                    intra_key_to_job.insert(sym, jobs.len());
                    intra_source.push(jobs.len());
                    jobs.push(FillJob::Intra(si));
                }
            }
            None => {
                intra_source.push(jobs.len());
                jobs.push(FillJob::Intra(si));
            }
        }
    }

    // Inter-scope plan: upper-triangular walk over scope pairs whose
    // inflated bboxes touch.
    let mut inter_key_to_job: HashMap<(SymbolId, SymbolId, Transform), usize> = HashMap::new();
    let mut inter_source: Vec<(usize, usize, usize)> = Vec::new(); // (si, sj, job)
    for si in 0..scopes.len() {
        for sj in (si + 1)..scopes.len() {
            let (sa, sb) = (&scopes[si], &scopes[sj]);
            let (Some(ba), Some(bb)) = (sa.bbox, sb.bbox) else {
                continue;
            };
            // invariant: non-negative range, as above.
            let near = ba
                .inflate(max_range)
                .expect("inflate cannot fail")
                .touches(&bb);
            if !near {
                continue;
            }
            match (sa.symbol, sb.symbol) {
                (Some(x), Some(y)) => {
                    let rel = sa.transform.inverse().after(&sb.transform);
                    let key = (x, y, rel);
                    if let Some(&job) = inter_key_to_job.get(&key) {
                        stats.cache_hits += 1;
                        inter_source.push((si, sj, job));
                    } else {
                        stats.cache_misses += 1;
                        inter_key_to_job.insert(key, jobs.len());
                        inter_source.push((si, sj, jobs.len()));
                        jobs.push(FillJob::Cross(si, sj));
                    }
                }
                _ => {
                    inter_source.push((si, sj, jobs.len()));
                    jobs.push(FillJob::Cross(si, sj));
                }
            }
        }
    }

    // Step 2 — fill every distinct cache entry (and each uncached scope
    // search) across the worker pool. In library mode each *symbol*
    // job additionally consults the batch's content-keyed cache: the
    // key hashes exactly what the fill is a pure function of (the
    // scopes' normalized bbox sequences + the bound-tech revision), so
    // a hit returns the bytes a local fill would have produced.
    // Symbol-less (loose top-level) scopes never touch the shared
    // cache — their geometry is cell-specific, and caching it would
    // grow the cache with rows no sibling can hit.
    let filled: Vec<Arc<Vec<(usize, usize)>>> = run_ordered(jobs.len(), workers, |k| {
        let compute = || match jobs[k] {
            FillJob::Intra(si) => local_candidates(view, &scopes[si].element_ids, max_range, cell),
            FillJob::Cross(si, sj) => cross_candidates(
                view,
                &scopes[si].element_ids,
                &scopes[sj].element_ids,
                max_range,
                cell,
            ),
        };
        let key = shared.and_then(|(_, revision)| match jobs[k] {
            FillJob::Intra(si) => scopes[si]
                .symbol
                .map(|_| intra_content_key(view, &scopes[si].element_ids, revision)),
            FillJob::Cross(si, sj) => scopes[si].symbol.and(scopes[sj].symbol).map(|_| {
                cross_content_key(
                    view,
                    &scopes[si].element_ids,
                    &scopes[sj].element_ids,
                    revision,
                )
            }),
        });
        match (shared, key) {
            (Some((cache, _)), Some(key)) => cache.get_or_fill(key, compute),
            _ => Arc::new(compute()),
        }
    });

    HierPlan {
        scopes,
        intra_source,
        inter_source,
        filled,
    }
}

impl HierPlan {
    /// Number of assembly units: one per scope (intra pairs), then one
    /// per near scope pair (inter pairs).
    fn unit_count(&self) -> usize {
        self.scopes.len() + self.inter_source.len()
    }

    /// Unit `k`'s global candidate pairs — the **single** cache-row to
    /// global-id mapping behind both the buffered assembly
    /// ([`assemble_pairs`]) and the tiled streaming walk
    /// ([`hierarchical_tiled`]), so the byte-identity contract between
    /// the two paths cannot drift. Units walk in canonical order:
    /// scopes first, then the near scope pairs.
    fn unit_pairs(&self, k: usize) -> Vec<(usize, usize)> {
        if k < self.scopes.len() {
            let (scope, job) = (&self.scopes[k], self.intra_source[k]);
            self.filled[job]
                .iter()
                .map(|&(li, lj)| (scope.element_ids[li], scope.element_ids[lj]))
                .collect()
        } else {
            let (si, sj, job) = self.inter_source[k - self.scopes.len()];
            let (sa, sb) = (&self.scopes[si], &self.scopes[sj]);
            self.filled[job]
                .iter()
                .map(|&(la, lb)| (sa.element_ids[la], sb.element_ids[lb]))
                .collect()
        }
    }
}

/// Assembles the canonical global pair list from a filled plan (the
/// buffered path — O(total pairs) of memory): every unit's pairs in
/// unit order.
fn assemble_pairs(plan: &HierPlan) -> Vec<(usize, usize)> {
    (0..plan.unit_count())
        .flat_map(|k| plan.unit_pairs(k))
        .collect()
}

/// Tiled evaluation of a filled hierarchical plan: the natural tiles
/// are the assembly units themselves — one per scope (intra pairs),
/// one per near scope pair (inter pairs) — walked in exactly
/// [`assemble_pairs`]'s order, so the streamed violation list is
/// byte-identical to evaluating the assembled buffer. Each unit maps
/// its cache row to global ids in a unit-local buffer (bounded by the
/// widest scope, not the instance count) and discards it after
/// evaluation.
fn hierarchical_tiled(
    cx: &EvalCx<'_>,
    plan: &HierPlan,
    workers: usize,
    stats: &mut InteractStats,
) -> (Vec<Violation>, Vec<MaskEdge>) {
    let results = run_ordered(plan.unit_count(), workers, |k| {
        let pairs = plan.unit_pairs(k);
        evaluate_tile(cx, &pairs)
    });
    let mut out = Vec::new();
    let mut edges = Vec::new();
    for (vs, es, tile_stats) in results {
        out.extend(vs);
        edges.extend(es);
        stats.absorb(&tile_stats);
    }
    (out, edges)
}

/// Candidate close pairs within one element set (sorted local indices).
fn local_candidates(
    view: &ChipView,
    ids: &[usize],
    max_range: Coord,
    cell: Coord,
) -> Vec<(usize, usize)> {
    let bboxes = view.elements.bboxes();
    let mut index: GridIndex<usize> = GridIndex::new(cell);
    for (local, &id) in ids.iter().enumerate() {
        index.insert(bboxes[id], local);
    }
    let mut out = Vec::new();
    for (li, &id) in ids.iter().enumerate() {
        // invariant: non-negative range, as above.
        let query = bboxes[id].inflate(max_range).expect("inflate cannot fail");
        // Ascending-query-order results keep `out` lexicographically
        // sorted without an explicit sort.
        for &lj in index.query(&query) {
            if lj > li {
                out.push((li, lj));
            }
        }
    }
    debug_assert!(out.is_sorted());
    out
}

/// Candidate close pairs across two element sets (sorted local index
/// pairs).
fn cross_candidates(
    view: &ChipView,
    a: &[usize],
    b: &[usize],
    max_range: Coord,
    cell: Coord,
) -> Vec<(usize, usize)> {
    let bboxes = view.elements.bboxes();
    let mut index: GridIndex<usize> = GridIndex::new(cell);
    for (local, &id) in b.iter().enumerate() {
        index.insert(bboxes[id], local);
    }
    let mut out = Vec::new();
    for (la, &id) in a.iter().enumerate() {
        // invariant: non-negative range, as above.
        let query = bboxes[id].inflate(max_range).expect("inflate cannot fail");
        // Ascending-query-order results keep `out` lexicographically
        // sorted without an explicit sort.
        for &lb in index.query(&query) {
            out.push((la, lb));
        }
    }
    debug_assert!(out.is_sorted());
    out
}

/// Content key for an intra-scope fill: the scope's bbox sequence in
/// walk order, **normalized** by its first bbox's lower-left corner —
/// so every translated instance of the same definition, in any cell of
/// the batch, hashes identically. Rotated/mirrored instances hash
/// differently (their bbox sequences differ) and simply miss — a
/// conservative, correct outcome. The bound-technology revision pins
/// the rule reach and cell size the fill was computed under.
///
/// Bboxes are the *complete* input of [`local_candidates`] (layers and
/// shapes only matter at evaluation, which stays per-cell), so equal
/// keys imply byte-equal fills.
fn intra_content_key(view: &ChipView, ids: &[usize], revision: u64) -> (u64, u64) {
    let bboxes = view.elements.bboxes();
    let mut h = ContentHash::new();
    h.word(revision);
    h.word(1); // domain tag: intra
    h.word(ids.len() as u64);
    let (rx, ry) = ids
        .first()
        .map(|&id| (bboxes[id].x1, bboxes[id].y1))
        .unwrap_or((0, 0));
    for &id in ids {
        let b = bboxes[id];
        h.coord(b.x1 - rx);
        h.coord(b.y1 - ry);
        h.coord(b.x2 - rx);
        h.coord(b.y2 - ry);
    }
    h.digest()
}

/// Content key for a cross-scope fill: both scopes' bbox sequences,
/// normalized by scope `a`'s reference corner — one shared origin, so
/// the key captures the pair's **relative placement** exactly like the
/// per-run `(SymbolId, SymbolId, relative transform)` key, but by
/// content. See [`intra_content_key`] for why bboxes suffice.
fn cross_content_key(view: &ChipView, a: &[usize], b: &[usize], revision: u64) -> (u64, u64) {
    let bboxes = view.elements.bboxes();
    let mut h = ContentHash::new();
    h.word(revision);
    h.word(2); // domain tag: cross
    h.word(a.len() as u64);
    h.word(b.len() as u64);
    let (rx, ry) = a
        .first()
        .map(|&id| (bboxes[id].x1, bboxes[id].y1))
        .unwrap_or((0, 0));
    for &id in a.iter().chain(b) {
        let bb = bboxes[id];
        h.coord(bb.x1 - rx);
        h.coord(bb.y1 - ry);
        h.coord(bb.x2 - rx);
        h.coord(bb.y2 - ry);
    }
    h.digest()
}

// ---------------------------------------------------------------------
// Phase 2: pair evaluation (serial or scoped-parallel).
// ---------------------------------------------------------------------

/// Read-only state shared by every evaluation worker.
struct EvalCx<'a> {
    view: &'a ChipView,
    tech: &'a Technology,
    nets: &'a NetgenResult,
    options: &'a InteractOptions,
    /// Device-forming layer pairs (touching cross-layer pairs on these
    /// layers were already reported as implied devices by the
    /// connection stage) — computed once per run, or borrowed from the
    /// batch's [`BoundTechnology`] in library mode.
    forming: Cow<'a, HashSet<(LayerId, LayerId)>>,
}

/// Evaluates the candidate list, splitting it into contiguous chunks
/// across a scoped thread pool when `workers > 1`. Workers collect into
/// private vectors and counters; results are merged in chunk order, so
/// the outcome is byte-identical to a serial evaluation.
fn evaluate_candidates(
    cx: &EvalCx<'_>,
    pairs: &[(usize, usize)],
    workers: usize,
    stats: &mut InteractStats,
) -> (Vec<Violation>, Vec<MaskEdge>) {
    if workers <= 1 || pairs.len() < 2 {
        let mut out = Vec::new();
        let mut edges = Vec::new();
        for &(i, j) in pairs {
            evaluate_pair(cx, i, j, &mut out, &mut edges, stats);
        }
        return (out, edges);
    }
    let chunk = pairs.len().div_ceil(workers);
    let chunks: Vec<&[(usize, usize)]> = pairs.chunks(chunk).collect();
    let results = run_ordered(chunks.len(), workers, |k| {
        let mut local = Vec::new();
        let mut local_edges = Vec::new();
        let mut local_stats = InteractStats::default();
        for &(i, j) in chunks[k] {
            evaluate_pair(cx, i, j, &mut local, &mut local_edges, &mut local_stats);
        }
        (local, local_edges, local_stats)
    });
    let mut merged = Vec::new();
    let mut edges = Vec::new();
    for (local, local_edges, local_stats) in results {
        merged.extend(local);
        edges.extend(local_edges);
        stats.absorb(&local_stats);
    }
    (merged, edges)
}

/// Decides and applies the rule for one element pair.
fn evaluate_pair(
    cx: &EvalCx<'_>,
    i: usize,
    j: usize,
    violations: &mut Vec<Violation>,
    edges: &mut Vec<MaskEdge>,
    stats: &mut InteractStats,
) {
    let (view, tech, nets) = (cx.view, cx.tech, cx.nets);
    let a = view.elements.get(i);
    let b = view.elements.get(j);

    // Same-mask conflict edges are purely geometric, so they are
    // collected *before* any electrical pruning: sharing a net or a
    // device does not put two features on different masks. Touching
    // features (dist == 0) print as one feature and never conflict.
    if a.layer() == b.layer() {
        if let Some(threshold) = tech.rules().same_mask(a.layer()) {
            if let Some((dist, _)) =
                diic_geom::batch::closest_approach(a.rects(), b.rects(), cx.options.metric)
            {
                if dist > 0 && dist < threshold {
                    edges.push(MaskEdge {
                        a: i,
                        b: j,
                        gap: dist,
                    });
                }
            }
        }
    }

    if a.device().is_some() && a.device() == b.device() {
        return; // internal to one device: stage 3's territory
    }

    let net_a = nets.element_net[i];
    let net_b = nets.element_net[j];
    let same_net = match (net_a, net_b) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    };

    // Device overrides (Fig. 6): an element inside a device may replace the
    // matrix rule for its interactions.
    let mut rule: Option<(Coord, bool)> = None; // (required, counts_same_net)
    let mut overridden = false;
    for (own, other) in [(i, j), (j, i)] {
        let eo = view.elements.get(own);
        let Some(d) = eo.device() else { continue };
        let Some(arch) = tech.device(view.str(view.devices[d].device_type)) else {
            continue;
        };
        if let Some(o) = arch.find_override(eo.layer(), view.elements.layers()[other]) {
            overridden = true;
            match o.spacing {
                None => {
                    stats.override_waived += 1;
                    return; // waived entirely (resistor-to-isolation tie)
                }
                Some(s) => {
                    if same_net && !o.applies_same_net {
                        stats.same_net_suppressed += 1;
                        return;
                    }
                    rule = Some((s, same_net));
                }
            }
            break;
        }
    }

    if !overridden {
        let Some(matrix) = tech.rules().spacing(a.layer(), b.layer()) else {
            stats.no_rule += 1;
            return;
        };
        // Transistor relatedness: a transistor's un-netted parts are only
        // checked against unrelated elements.
        let mut required = None;
        for (inside, other) in [(i, j), (j, i)] {
            let Some(d) = view.elements.get(inside).device() else {
                continue;
            };
            let dev = &view.devices[d];
            if !dev.class.map(|c| c.is_transistor()).unwrap_or(false) {
                continue;
            }
            let other_net = nets.element_net[other];
            let related = match other_net {
                Some(n) => nets.device_terminal_nets[d].contains(&n),
                None => view
                    .elements
                    .get(other)
                    .device()
                    .map(|od| od == d)
                    .unwrap_or(false),
            };
            if related {
                stats.related_suppressed += 1;
                return;
            }
            required = Some(matrix.for_unrelated_device());
        }
        let req = match required {
            Some(r) => r,
            None => {
                if same_net && cx.options.same_net_suppression {
                    match matrix.for_same_net() {
                        None => {
                            stats.same_net_suppressed += 1;
                            return;
                        }
                        Some(s) => s,
                    }
                } else {
                    matrix.diff_net
                }
            }
        };
        rule = Some((req, same_net));
    }

    let Some((required, same_net)) = rule else {
        return;
    };

    // Distance: the closest-approach batch kernel over the two arena
    // runs. The marker is the tight [`diic_geom::spacing::gap_box`] of
    // the closest rect pair — every marker point is within the pair's
    // gap distance of both offending features, which is what lets the
    // incremental checker anchor spacing violations to a dirty halo (a
    // bounding-union marker could stretch arbitrarily far from the gap
    // along a long wire).
    stats.distance_checks += 1;
    let Some((dist, gap_loc)) =
        diic_geom::batch::closest_approach(a.rects(), b.rects(), cx.options.metric)
    else {
        return;
    };

    if dist == 0 {
        // Touching: same-layer pairs were resolved by the connection stage;
        // cross-layer device-forming overlaps were reported as implied
        // devices. What remains (e.g. base touching isolation under a
        // transistor override) is a genuine short.
        if a.layer() == b.layer() {
            return;
        }
        let key = if a.layer() <= b.layer() {
            (a.layer(), b.layer())
        } else {
            (b.layer(), a.layer())
        };
        if cx.forming.contains(&key) {
            return;
        }
    }

    if dist < required {
        // Orient the pair canonically before naming layers: the flat
        // search, the hierarchical search, and the edit session's halo
        // re-check enumerate pairs in different orders, and the rendered
        // violation must not encode which path produced it (see
        // `pair_context`).
        let (a, b) = if pair_key(view, tech, a) <= pair_key(view, tech, b) {
            (a, b)
        } else {
            (b, a)
        };
        violations.push(Violation {
            stage: CheckStage::Interactions,
            kind: ViolationKind::Spacing {
                layer_a: tech.layer(a.layer()).name.clone(),
                layer_b: tech.layer(b.layer()).name.clone(),
                measured: dist,
                required,
                same_net,
            },
            location: Some(gap_loc),
            context: pair_context(view, a, b),
        });
    }
}

/// Enumeration-independent sort key for one side of an element pair:
/// instance path, layer name, bounding box. Two elements that tie on
/// all three are interchangeable duplicates, so the residual ambiguity
/// cannot change a rendered violation.
fn pair_key<'v>(
    view: &'v ChipView,
    tech: &'v Technology,
    e: crate::binding::ElementRef<'_>,
) -> (&'v str, &'v str, Rect) {
    (
        view.str(e.path()),
        tech.layer(e.layer()).name.as_str(),
        e.bbox(),
    )
}

fn pair_context(
    view: &ChipView,
    a: crate::binding::ElementRef<'_>,
    b: crate::binding::ElementRef<'_>,
) -> String {
    if a.path() == b.path() {
        view.str(a.path()).to_string()
    } else {
        // Lexicographic, not enumeration order: the flat search hands
        // pairs over in element-id order, the hierarchical search in
        // scope-visit order, and the edit session's halo re-check in
        // clipped-subset order — the rendered context must not care
        // which path produced it (an `AddCall` edit appends a call
        // *after* top-level elements, where id order and scope order
        // disagree).
        let (pa, pb) = (view.str(a.path()), view.str(b.path()));
        if pa <= pb {
            format!("{pa} / {pb}")
        } else {
            format!("{pb} / {pa}")
        }
    }
}

// ---------------------------------------------------------------------
// Same-mask conflict graphs (multi-patterning).
// ---------------------------------------------------------------------

/// One conflict-graph edge: elements `a < b` on the same layer, closer
/// than the layer's `same_mask` distance but not touching.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct MaskEdge {
    a: usize,
    b: usize,
    gap: Coord,
}

/// Analyses a collected edge set: BFS 2-colouring per connected
/// component (sorted adjacency, ascending roots — fully deterministic),
/// one [`ViolationKind::MaskOddCycle`] per non-bipartite component,
/// anchored at the closest (then lowest-id) edge whose endpoints took
/// the same colour, with `cycle` the length of the actual odd cycle
/// that edge closes through the BFS tree.
fn mask_cycle_violations(
    view: &ChipView,
    tech: &Technology,
    metric: SizingMode,
    mut edges: Vec<MaskEdge>,
) -> Vec<Violation> {
    if edges.is_empty() {
        return Vec::new();
    }
    // Canonical edge order regardless of which search shape collected
    // the edges; the dedup is belt and braces — the tiling contract
    // already enumerates every pair exactly once.
    edges.sort_unstable();
    edges.dedup();

    let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
    for e in &edges {
        adj.entry(e.a).or_default().push(e.b);
        adj.entry(e.b).or_default().push(e.a);
    }
    let mut nodes: Vec<usize> = adj.keys().copied().collect();
    nodes.sort_unstable();
    for list in adj.values_mut() {
        list.sort_unstable();
        list.dedup();
    }

    let mut color: HashMap<usize, bool> = HashMap::new();
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut depth: HashMap<usize, usize> = HashMap::new();
    let mut out = Vec::new();
    for &root in &nodes {
        if color.contains_key(&root) {
            continue;
        }
        color.insert(root, false);
        depth.insert(root, 0);
        let mut queue = std::collections::VecDeque::from([root]);
        let mut members: HashSet<usize> = HashSet::from([root]);
        while let Some(u) = queue.pop_front() {
            let cu = color[&u];
            for &v in &adj[&u] {
                if let std::collections::hash_map::Entry::Vacant(slot) = color.entry(v) {
                    slot.insert(!cu);
                    parent.insert(v, u);
                    depth.insert(v, depth[&u] + 1);
                    members.insert(v);
                    queue.push_back(v);
                }
            }
        }
        // An edge whose endpoints took the same colour closes an odd
        // cycle through the BFS tree; both endpoints of any edge share
        // a component, so testing one against `members` suffices.
        let witness = edges
            .iter()
            .filter(|e| members.contains(&e.a) && color[&e.a] == color[&e.b])
            .min_by_key(|e| (e.gap, e.a, e.b));
        let Some(e) = witness else { continue };
        let cycle = odd_cycle_len(&parent, &depth, e.a, e.b);
        let ea = view.elements.get(e.a);
        let eb = view.elements.get(e.b);
        let required = tech
            .rules()
            .same_mask(ea.layer())
            .expect("a mask edge implies a same_mask rule on its layer");
        let (_, gap_loc) = diic_geom::batch::closest_approach(ea.rects(), eb.rects(), metric)
            .expect("a mask edge implies a closest approach");
        out.push(Violation {
            stage: CheckStage::Interactions,
            kind: ViolationKind::MaskOddCycle {
                layer: tech.layer(ea.layer()).name.clone(),
                measured: e.gap,
                required,
                cycle,
            },
            location: Some(gap_loc),
            context: pair_context(view, ea, eb),
        });
    }
    out
}

/// Length of the odd cycle the tree-closing edge `(u, v)` forms: the
/// two BFS-tree paths up to the lowest common ancestor, plus the edge
/// itself. Same-colour endpoints make `depth[u] + depth[v]` even, so
/// the result is always odd.
fn odd_cycle_len(
    parent: &HashMap<usize, usize>,
    depth: &HashMap<usize, usize>,
    mut u: usize,
    mut v: usize,
) -> usize {
    let (du, dv) = (depth[&u], depth[&v]);
    while depth[&u] > depth[&v] {
        u = parent[&u];
    }
    while depth[&v] > depth[&u] {
        v = parent[&v];
    }
    while u != v {
        u = parent[&u];
        v = parent[&v];
    }
    du + dv - 2 * depth[&u] + 1
}

/// Runs the same-mask conflict-graph analysis standalone, over the
/// whole chip: enumerates conflicting same-layer pairs from one flat
/// grid index and hands the edge set to the same odd-cycle analysis
/// the interaction stage runs — so the violations are byte-identical
/// to the ones [`check_interactions`] appends. Returns nothing when
/// the technology declares no `same_mask` rules.
///
/// This is the incremental session's recompute path: bipartiteness is
/// global, so after any edit the conflict verdict is re-derived from
/// scratch here rather than patched through the dirty halo.
pub fn check_same_mask(
    view: &ChipView,
    tech: &Technology,
    options: &InteractOptions,
) -> Vec<Violation> {
    if !tech.rules().has_same_mask() {
        return Vec::new();
    }
    let max_range = max_rule_range(tech);
    let cell = interaction_cell_size(tech);
    let index = element_grid(view, cell);
    let bboxes = view.elements.bboxes();
    let layers = view.elements.layers();
    let mut edges = Vec::new();
    for (i, bbox) in bboxes.iter().enumerate() {
        let Some(threshold) = tech.rules().same_mask(layers[i]) else {
            continue;
        };
        // invariant: non-negative range, as above.
        let query = bbox.inflate(max_range).expect("inflate cannot fail");
        for &j in index.query(&query) {
            if j <= i || layers[j] != layers[i] {
                continue;
            }
            let a = view.elements.get(i);
            let b = view.elements.get(j);
            if let Some((dist, _)) =
                diic_geom::batch::closest_approach(a.rects(), b.rects(), options.metric)
            {
                if dist > 0 && dist < threshold {
                    edges.push(MaskEdge {
                        a: i,
                        b: j,
                        gap: dist,
                    });
                }
            }
        }
    }
    mask_cycle_violations(view, tech, options.metric, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{instantiate, LayerBinding};
    use crate::connect::check_connections;
    use crate::netgen::generate_netlist;
    use diic_cif::parse;
    use diic_tech::nmos::nmos_technology;

    fn run_with(cif: &str, options: InteractOptions) -> (Vec<Violation>, InteractStats) {
        let layout = parse(cif).unwrap();
        let tech = nmos_technology();
        let (binding, _) = LayerBinding::bind(&layout, &tech);
        let mut view = instantiate(&layout, &tech, &binding);
        let conn = check_connections(&view, &tech);
        let labels: Vec<_> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let nets = generate_netlist(&mut view, &tech, &conn.merges, &labels);
        check_interactions(&view, &tech, &nets, &layout, &options)
    }

    fn run(cif: &str) -> (Vec<Violation>, InteractStats) {
        run_with(cif, InteractOptions::default())
    }

    /// A one-metal technology with a `same_mask` rule: spacing 750,
    /// conflict distance 1250 — gaps in (750, 1250) are spacing-clean
    /// but mask-conflicting.
    fn mp_tech() -> diic_tech::Technology {
        use diic_tech::{Layer, LayerKind, SpacingRule, Technology};
        let mut tech = Technology::new("mp", 250);
        let m = tech.add_layer(Layer::new("metal", "NM", LayerKind::Metal, 750));
        tech.rules_mut().set_spacing(m, m, SpacingRule::simple(750));
        tech.rules_mut().set_same_mask(m, 1250);
        tech
    }

    fn build(
        cif: &str,
        tech: &diic_tech::Technology,
    ) -> (ChipView, crate::netgen::NetgenResult, diic_cif::Layout) {
        let layout = parse(cif).unwrap();
        let (binding, _) = LayerBinding::bind(&layout, tech);
        let mut view = instantiate(&layout, tech, &binding);
        let conn = check_connections(&view, tech);
        let labels: Vec<_> = layout
            .labels()
            .iter()
            .map(|l| (l.clone(), binding.layer(l.layer)))
            .collect();
        let nets = generate_netlist(&mut view, tech, &conn.merges, &labels);
        (view, nets, layout)
    }

    /// Triangle of metal boxes with pairwise gaps 950 / 1000 / 1000:
    /// every gap clears the 750 spacing rule but conflicts under the
    /// 1250 same-mask rule — an odd (3-)cycle.
    const ODD_TRIANGLE: &str = "L NM; B 2000 750 1000 375; B 2000 750 3950 375; \
                                B 2950 750 2475 2125; E";

    /// Four metal boxes in a ring: adjacent gaps 1000 (conflict),
    /// diagonal gaps 1000·√2 ≈ 1414 (clear under the Euclidean
    /// metric) — an even cycle, 2-colourable.
    const EVEN_RING: &str = "L NM; B 2000 750 1000 2125; B 2000 750 4000 2125; \
                             B 2000 750 1000 375; B 2000 750 4000 375; E";

    #[test]
    fn odd_cycle_flagged_in_every_search_shape() {
        let tech = mp_tech();
        let (view, nets, layout) = build(ODD_TRIANGLE, &tech);
        let mut reference: Option<Vec<Violation>> = None;
        for hierarchical in [false, true] {
            for tiled in [false, true] {
                for parallelism in [1usize, 3] {
                    let options = InteractOptions {
                        hierarchical,
                        tiled,
                        parallelism,
                        ..Default::default()
                    };
                    let (v, _) = check_interactions(&view, &tech, &nets, &layout, &options);
                    let mask: Vec<&Violation> = v
                        .iter()
                        .filter(|x| matches!(x.kind, ViolationKind::MaskOddCycle { .. }))
                        .collect();
                    assert_eq!(mask.len(), 1, "hier={hierarchical} tiled={tiled}: {v:?}");
                    assert!(
                        matches!(
                            &mask[0].kind,
                            ViolationKind::MaskOddCycle {
                                measured: 1000,
                                required: 1250,
                                cycle: 3,
                                ..
                            }
                        ),
                        "{:?}",
                        mask[0].kind
                    );
                    assert!(mask[0].location.is_some());
                    match &reference {
                        None => reference = Some(v),
                        Some(r) => assert_eq!(
                            r, &v,
                            "hier={hierarchical} tiled={tiled} workers={parallelism}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn even_ring_is_two_mask_decomposable() {
        let tech = mp_tech();
        let (view, nets, layout) = build(EVEN_RING, &tech);
        let (v, _) = check_interactions(&view, &tech, &nets, &layout, &InteractOptions::default());
        assert!(
            !v.iter()
                .any(|x| matches!(x.kind, ViolationKind::MaskOddCycle { .. })),
            "an even cycle is bipartite: {v:?}"
        );
    }

    #[test]
    fn standalone_check_matches_inline_collection() {
        let tech = mp_tech();
        for cif in [ODD_TRIANGLE, EVEN_RING] {
            let (view, nets, layout) = build(cif, &tech);
            let options = InteractOptions::default();
            let (v, _) = check_interactions(&view, &tech, &nets, &layout, &options);
            let inline: Vec<Violation> = v
                .into_iter()
                .filter(|x| matches!(x.kind, ViolationKind::MaskOddCycle { .. }))
                .collect();
            let standalone = check_same_mask(&view, &tech, &options);
            assert_eq!(inline, standalone, "cif={cif}");
        }
    }

    #[test]
    fn standalone_check_is_free_without_rules() {
        // nmos declares no same_mask rules: the standalone check
        // early-outs and the triangle is clean.
        let tech = nmos_technology();
        let (view, _, _) = build(ODD_TRIANGLE, &tech);
        assert!(check_same_mask(&view, &tech, &InteractOptions::default()).is_empty());
    }

    #[test]
    fn touching_features_do_not_conflict() {
        // Two of the triangle's boxes fused into one touching pair:
        // touching features print as one mask feature, so the only
        // conflict edges left cannot close an odd cycle.
        let cif = "L NM; B 2000 750 1000 375; B 2000 750 2950 375; \
                   B 2950 750 2475 2125; E";
        let tech = mp_tech();
        let (view, nets, layout) = build(cif, &tech);
        let (v, _) = check_interactions(&view, &tech, &nets, &layout, &InteractOptions::default());
        assert!(
            !v.iter()
                .any(|x| matches!(x.kind, ViolationKind::MaskOddCycle { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn same_mask_extends_rule_reach() {
        let tech = mp_tech();
        assert_eq!(
            max_rule_range(&tech),
            1250,
            "same_mask must widen the reach"
        );
    }

    #[test]
    fn metal_spacing_violation() {
        // Two metal wires 500 apart; rule is 750.
        let (v, _) = run("L NM; B 2000 750 1000 375; B 2000 750 1000 1625; E");
        assert_eq!(v.len(), 1);
        assert!(matches!(
            &v[0].kind,
            ViolationKind::Spacing {
                measured: 500,
                required: 750,
                ..
            }
        ));
    }

    #[test]
    fn fig5a_same_net_not_checked() {
        // The same geometry with both wires declared on one net: suppressed.
        let (v, stats) = run("L NM; 9N A; B 2000 750 1000 375; 9N A; B 2000 750 1000 1625; E");
        assert!(v.is_empty(), "{v:?}");
        assert!(stats.same_net_suppressed >= 1);
    }

    #[test]
    fn ablation_without_suppression_flags_same_net() {
        let opts = InteractOptions {
            same_net_suppression: false,
            ..Default::default()
        };
        let (v, _) = run_with(
            "L NM; 9N A; B 2000 750 1000 375; 9N A; B 2000 750 1000 1625; E",
            opts,
        );
        assert_eq!(
            v.len(),
            1,
            "without topology the same-net pair is a false error"
        );
        assert!(matches!(
            &v[0].kind,
            ViolationKind::Spacing { same_net: true, .. }
        ));
    }

    #[test]
    fn fig4_corner_metric_difference() {
        // Metal corners at diagonal distance 500·√2 ≈ 707 < 750: violation
        // under Euclidean; L∞ = 500 also violates. Now at 550 apart each
        // axis: L2 ≈ 778 > 750 passes, L∞ = 550 fails (false error).
        let euclid = run("L NM; B 1000 750 500 375; B 1000 750 2050 1675; E");
        assert!(euclid.0.is_empty(), "{:?}", euclid.0);
        let orth = run_with(
            "L NM; B 1000 750 500 375; B 1000 750 2050 1675; E",
            InteractOptions {
                metric: SizingMode::Orthogonal,
                ..Default::default()
            },
        );
        assert_eq!(orth.0.len(), 1, "orthogonal metric over-flags the corner");
    }

    #[test]
    fn no_rule_pairs_skipped() {
        let (v, stats) = run("L NM; B 2000 750 1000 375; L ND; B 2000 500 1000 1625; E");
        assert!(v.is_empty());
        assert!(stats.no_rule >= 1);
    }

    #[test]
    fn transistor_related_suppressed_unrelated_checked() {
        // A poly wire connected to the transistor's gate terminal may run
        // close to the device; an unrelated poly wire may not.
        let cif_related = "
            DS 1; 9D NMOS_ENH; 9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
            L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF;
            C 1 T 0 0;
            L NP; 9N in; W 500 -375 0 -3000 0;
            E";
        let (v, stats) = run(cif_related);
        assert!(v.is_empty(), "{v:?}");
        assert!(stats.related_suppressed >= 1);
        // Unrelated wire at 125 from the diffusion (rule: poly-diff 250).
        let cif_unrelated = "
            DS 1; 9D NMOS_ENH; 9T G NP -375 0; 9T S ND 250 -1000; 9T D ND 250 1000;
            L NP; B 1500 500 250 0; L ND; B 500 2500 250 0; DF;
            C 1 T 0 0;
            L NP; 9N foreign; W 500 875 -3000 875 3000;
            E";
        let (v2, _) = run(cif_unrelated);
        assert!(
            v2.iter()
                .any(|x| matches!(&x.kind, ViolationKind::Spacing { .. })),
            "unrelated poly near transistor diff must be checked: {v2:?}"
        );
    }

    #[test]
    fn hierarchical_matches_flat_verdicts() {
        // An array with injected spacing violations must yield identical
        // violation multisets under both engines.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF;\n");
        for i in 0..6 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 4000));
        }
        cif.push('E');
        let (flat, _) = run(&cif);
        let (hier, stats) = run_with(
            &cif,
            InteractOptions {
                hierarchical: true,
                ..Default::default()
            },
        );
        assert_eq!(flat.len(), hier.len());
        assert_eq!(flat.len(), 6); // one violation per instance
        assert!(stats.cache_hits >= 5, "stats: {stats:?}");
    }

    #[test]
    fn hierarchical_cross_instance_pairs() {
        // Instances placed too close: the wires of adjacent cells violate
        // metal spacing across the boundary.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; DF;\n");
        for i in 0..5 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500)); // 500 gap
        }
        cif.push('E');
        let (flat, _) = run(&cif);
        let (hier, stats) = run_with(
            &cif,
            InteractOptions {
                hierarchical: true,
                ..Default::default()
            },
        );
        assert_eq!(flat.len(), 4, "{flat:?}");
        assert_eq!(hier.len(), 4);
        // 4 identical adjacent pairs: 1 miss + 3 hits.
        assert!(stats.cache_hits >= 3, "stats: {stats:?}");
    }

    #[test]
    fn parallel_evaluation_matches_serial_exactly() {
        // A dense array with both intra- and inter-instance violations.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF;\n");
        for i in 0..8 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500));
        }
        cif.push('E');
        for hierarchical in [false, true] {
            let serial = run_with(
                &cif,
                InteractOptions {
                    hierarchical,
                    ..Default::default()
                },
            );
            for workers in [2usize, 3, 8, 0] {
                let parallel = run_with(
                    &cif,
                    InteractOptions {
                        hierarchical,
                        parallelism: workers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    serial.0, parallel.0,
                    "hier={hierarchical} workers={workers}: violation lists diverge"
                );
                assert_eq!(
                    serial.1, parallel.1,
                    "hier={hierarchical} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn tiled_counts_each_pair_once_and_matches_buffered() {
        // Satellite guarantee: under tiling, `candidate_pairs` counts
        // every enumerated pair exactly once — a pair spanning two
        // tiles is owned by its lower element's tile — pinned against
        // the buffered flat search on a known chip. Tiny tiles (1
        // element) force every cross-element pair to span a tile
        // boundary.
        // 5 wires in a 500-pitch row: every adjacent and next-adjacent
        // pair is within the rule reach, a known candidate structure.
        let mut cif = String::new();
        for i in 0..5 {
            cif.push_str(&format!("L NM; B 2000 750 1000 {};\n", 375 + i * 1250));
        }
        cif.push('E');
        let buffered = run_with(
            &cif,
            InteractOptions {
                tiled: false,
                ..Default::default()
            },
        );
        assert!(buffered.1.candidate_pairs > 0);
        assert_eq!(
            buffered.1.peak_candidate_buffer, buffered.1.candidate_pairs,
            "a buffered run holds the whole pair list"
        );
        for tile_elements in [1usize, 2, 512] {
            for workers in [1usize, 3] {
                let tiled = run_with(
                    &cif,
                    InteractOptions {
                        tiled: true,
                        tile_elements,
                        parallelism: workers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    tiled.0, buffered.0,
                    "tile={tile_elements} workers={workers}: violations diverge"
                );
                assert_eq!(
                    tiled.1.candidate_pairs, buffered.1.candidate_pairs,
                    "tile={tile_elements} workers={workers}: pairs double- or under-counted"
                );
                assert_eq!(tiled.1.distance_checks, buffered.1.distance_checks);
                if tile_elements < 5 {
                    assert!(
                        tiled.1.peak_candidate_buffer < buffered.1.candidate_pairs,
                        "tile={tile_elements}: peak {} not bounded below total {}",
                        tiled.1.peak_candidate_buffer,
                        buffered.1.candidate_pairs
                    );
                }
            }
        }
    }

    #[test]
    fn hierarchical_tiled_streams_per_scope() {
        // The hierarchical search's tiles are its assembly units; the
        // peak buffer must be the widest scope's pair list, not the
        // total across instances — with identical violations.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF;\n");
        for i in 0..8 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2500));
        }
        cif.push('E');
        let buffered = run_with(
            &cif,
            InteractOptions {
                hierarchical: true,
                tiled: false,
                ..Default::default()
            },
        );
        let tiled = run_with(
            &cif,
            InteractOptions {
                hierarchical: true,
                tiled: true,
                ..Default::default()
            },
        );
        assert_eq!(tiled.0, buffered.0);
        assert_eq!(tiled.1.candidate_pairs, buffered.1.candidate_pairs);
        assert_eq!(tiled.1.cache_hits, buffered.1.cache_hits);
        assert!(
            tiled.1.peak_candidate_buffer < buffered.1.peak_candidate_buffer,
            "peak {} vs buffered {}",
            tiled.1.peak_candidate_buffer,
            buffered.1.peak_candidate_buffer
        );
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let mut a = InteractStats {
            candidate_pairs: 1,
            distance_checks: 2,
            ..Default::default()
        };
        let b = InteractStats {
            candidate_pairs: 10,
            same_net_suppressed: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.candidate_pairs, 11);
        assert_eq!(a.distance_checks, 2);
        assert_eq!(a.same_net_suppressed, 3);
    }

    #[test]
    fn stats_absorb_maxes_peak_buffer() {
        // The peak is a high-water mark, not a sum: folding per-tile
        // records keeps the widest tile.
        let mut a = InteractStats {
            peak_candidate_buffer: 5,
            ..Default::default()
        };
        a.absorb(&InteractStats {
            peak_candidate_buffer: 9,
            ..Default::default()
        });
        a.absorb(&InteractStats {
            peak_candidate_buffer: 3,
            ..Default::default()
        });
        assert_eq!(a.peak_candidate_buffer, 9);
    }

    #[test]
    fn cell_size_derived_from_rules() {
        let tech = nmos_technology();
        let reach = max_rule_range(&tech);
        assert!(reach > 0);
        assert_eq!(interaction_cell_size(&tech), (reach * 4).max(1000));
    }

    #[test]
    fn cell_size_floored_for_empty_rule_deck() {
        // A technology with no rules and no devices: the reach floor of
        // 1 must still yield a usable (non-degenerate) cell size.
        let tech = diic_tech::Technology::new("empty", 250);
        assert_eq!(max_rule_range(&tech), 1);
        assert_eq!(interaction_cell_size(&tech), 1000);
    }

    #[test]
    fn cell_size_saturates_for_huge_rule_reach() {
        use diic_tech::{Layer, LayerKind, SpacingRule, Technology};
        let mut tech = Technology::new("huge", 250);
        let m = tech.add_layer(Layer::new("m", "M", LayerKind::Metal, 750));
        tech.rules_mut()
            .set_spacing(m, m, SpacingRule::simple(Coord::MAX));
        assert_eq!(max_rule_range(&tech), Coord::MAX);
        // reach * 4 would overflow; the derivation must saturate, not panic.
        assert_eq!(interaction_cell_size(&tech), Coord::MAX);
    }

    #[test]
    fn parallel_enumeration_matches_serial_exactly() {
        // Enumeration itself (not just evaluation) runs on the worker
        // pool: an array with repeated symbols (intra + inter cache
        // traffic) and loose top-level geometry must yield identical
        // pair lists, stats, and violations for any worker count.
        let mut cif = String::from("DS 1; L NM; B 2000 750 1000 375; B 2000 750 1000 1625; DF;\n");
        for i in 0..7 {
            cif.push_str(&format!("C 1 T {} 0;\n", i * 2300));
        }
        cif.push_str("L NM; B 2000 700 1000 9000;\nE");
        let serial = run_with(
            &cif,
            InteractOptions {
                hierarchical: true,
                ..Default::default()
            },
        );
        assert!(serial.1.cache_hits > 0 && serial.1.cache_misses > 0);
        for workers in [2usize, 5, 0] {
            let parallel = run_with(
                &cif,
                InteractOptions {
                    hierarchical: true,
                    parallelism: workers,
                    ..Default::default()
                },
            );
            assert_eq!(serial.0, parallel.0, "workers={workers}");
            assert_eq!(serial.1, parallel.1, "workers={workers}");
        }
    }
}
