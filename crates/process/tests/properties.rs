//! Property tests for the exposure model's physical invariants.

use diic_geom::Rect;
use diic_process::{erf, ExposureModel};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn erf_bounded_and_odd(x in -8.0f64..8.0) {
        let v = erf(x);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((erf(-x) + v).abs() < 1e-12);
    }

    #[test]
    fn exposure_bounded_by_unity(
        x in -3000.0f64..3000.0,
        y in -3000.0f64..3000.0,
        w in 100i64..2000,
        h in 100i64..2000,
    ) {
        let m = ExposureModel::new(125.0, 0.5);
        let v = m.exposure(&[Rect::new(0, 0, w, h)], x, y);
        prop_assert!(v >= -1e-9, "negative exposure {v}");
        prop_assert!(v <= 1.0 + 1e-9, "super-unity exposure {v}");
    }

    #[test]
    fn exposure_monotone_in_mask(
        x in -2000.0f64..2000.0,
        y in -2000.0f64..2000.0,
        w in 100i64..1500,
    ) {
        // Adding disjoint mask area never decreases exposure.
        let m = ExposureModel::new(125.0, 0.5);
        let a = Rect::new(0, 0, w, 1000);
        let b = Rect::new(w + 500, 0, w + 1500, 1000);
        let single = m.exposure(&[a], x, y);
        let both = m.exposure(&[a, b], x, y);
        prop_assert!(both + 1e-12 >= single);
    }

    #[test]
    fn exposure_translation_invariant(
        dx in -5000i64..5000,
        dy in -5000i64..5000,
        px in -500.0f64..1500.0,
        py in -500.0f64..1500.0,
    ) {
        let m = ExposureModel::new(125.0, 0.5);
        let r = Rect::new(0, 0, 1000, 1000);
        let v1 = m.exposure(&[r], px, py);
        let v2 = m.exposure(
            &[r.translate(diic_geom::Vector::new(dx, dy))],
            px + dx as f64,
            py + dy as f64,
        );
        prop_assert!((v1 - v2).abs() < 1e-9);
    }

    #[test]
    fn wider_lines_expose_more_at_centre(w1 in 100i64..800, extra in 50i64..800) {
        let m = ExposureModel::new(125.0, 0.5);
        let w2 = w1 + extra;
        let narrow = Rect::new(-w1 / 2, -100_000, w1 / 2, 100_000);
        let wide = Rect::new(-w2 / 2, -100_000, w2 / 2, 100_000);
        let v1 = m.exposure(&[narrow], 0.0, 0.0);
        let v2 = m.exposure(&[wide], 0.0, 0.0);
        prop_assert!(v2 >= v1 - 1e-12, "wider line exposed less: {v2} < {v1}");
    }

    #[test]
    fn spacing_verdict_monotone_in_gap(g1 in 50i64..800, extra in 1i64..800) {
        // A wider gap never bridges harder.
        let m = ExposureModel::new(125.0, 0.5);
        let a = [Rect::new(0, 0, 2000, 2000)];
        let near = [Rect::new(2000 + g1, 0, 4000 + g1, 2000)];
        let far = [Rect::new(2000 + g1 + extra, 0, 4000 + g1 + extra, 2000)];
        let vn = diic_process::exposure_spacing_check(&a, &near, &m, 0);
        let vf = diic_process::exposure_spacing_check(&a, &far, &m, 0);
        prop_assert!(vf.bridge_exposure <= vn.bridge_exposure + 1e-9);
        if vf.violation {
            prop_assert!(vn.violation, "nearer pair passed while farther failed");
        }
    }

    #[test]
    fn misalignment_never_helps(g in 200i64..900, mis in 0i64..400) {
        let m = ExposureModel::new(125.0, 0.5);
        let a = [Rect::new(0, 0, 2000, 2000)];
        let b = [Rect::new(2000 + g, 0, 4000 + g, 2000)];
        let aligned = diic_process::exposure_spacing_check(&a, &b, &m, 0);
        let shifted = diic_process::exposure_spacing_check(&a, &b, &m, mis);
        prop_assert!(shifted.bridge_exposure + 1e-9 >= aligned.bridge_exposure);
    }
}
