//! Closed-form Gaussian exposure of box masks (the paper's Eq. 1).
//!
//! For a unit-amplitude Gaussian kernel of standard deviation σ and a mask
//! that is a union of axis-aligned boxes, the exposure at a point separates
//! into x and y factors:
//!
//! ```text
//! I(p) = Σ_boxes ¼ · [erf((x₂−pₓ)/√2σ) − erf((x₁−pₓ)/√2σ)]
//!                 · [erf((y₂−p_y)/√2σ) − erf((y₁−p_y)/√2σ)]
//! ```
//!
//! normalised so that a point deep inside a large box sees exposure 1.
//! The photoresist "prints" where exposure exceeds the threshold (0.5 at
//! the edge of an isolated large feature).

use crate::erf::erf;
use diic_geom::{Coord, Rect};

/// The Gaussian exposure model: kernel width and resist threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureModel {
    /// Gaussian σ in database units (exposure + etch blur).
    pub sigma: f64,
    /// Resist threshold in normalised exposure units (print where
    /// exposure ≥ threshold). 0.5 reproduces drawn dimensions for large
    /// isolated features.
    pub threshold: f64,
}

impl ExposureModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma <= 0` or `threshold` is outside `(0, 1)`.
    pub fn new(sigma: f64, threshold: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        assert!(
            threshold > 0.0 && threshold < 1.0,
            "threshold must be in (0,1)"
        );
        ExposureModel { sigma, threshold }
    }

    /// A model typical for the paper's era: σ = half a λ of 250 units,
    /// threshold 0.5.
    pub fn default_lambda250() -> Self {
        ExposureModel::new(125.0, 0.5)
    }

    /// Exposure contribution of one box at point `(px, py)` (normalised).
    pub fn box_exposure(&self, r: &Rect, px: f64, py: f64) -> f64 {
        let s = self.sigma * std::f64::consts::SQRT_2;
        let fx = erf((r.x2 as f64 - px) / s) - erf((r.x1 as f64 - px) / s);
        let fy = erf((r.y2 as f64 - py) / s) - erf((r.y1 as f64 - py) / s);
        0.25 * fx * fy
    }

    /// Exposure of a union-of-boxes mask at a point. Boxes must be disjoint
    /// (overlapping boxes double-expose, as they would on a real mask
    /// writer; pass a normalised `Region` decomposition for set semantics).
    pub fn exposure(&self, rects: &[Rect], px: f64, py: f64) -> f64 {
        rects.iter().map(|r| self.box_exposure(r, px, py)).sum()
    }

    /// True if the resist prints at the point.
    pub fn prints(&self, rects: &[Rect], px: f64, py: f64) -> bool {
        self.exposure(rects, px, py) >= self.threshold
    }

    /// Finds the extreme exposure along the segment from `(ax, ay)` to
    /// `(bx, by)` by dense seeding plus local ternary refinement. With
    /// `minimise = false` this is the maximum; with `minimise = true` the
    /// minimum — the **saddle** of the exposure field between two features,
    /// which is the value that decides whether the resist bridges the gap
    /// (the exposure ridge between two features runs along the line of
    /// closest approach; its lowest point is the bridging exposure).
    /// Returns `(t_at_extreme, exposure)` with `t ∈ [0, 1]`.
    pub fn extreme_exposure_on_segment(
        &self,
        rects: &[Rect],
        a: (f64, f64),
        b: (f64, f64),
        minimise: bool,
    ) -> (f64, f64) {
        let sign = if minimise { -1.0 } else { 1.0 };
        let eval = |t: f64| {
            let x = a.0 + (b.0 - a.0) * t;
            let y = a.1 + (b.1 - a.1) * t;
            sign * self.exposure(rects, x, y)
        };
        // Dense seed.
        let mut best_t = 0.0;
        let mut best = eval(0.0);
        const SEEDS: usize = 64;
        for i in 1..=SEEDS {
            let t = i as f64 / SEEDS as f64;
            let v = eval(t);
            if v > best {
                best = v;
                best_t = t;
            }
        }
        // Local refinement by ternary search around the best seed.
        let mut lo = (best_t - 1.0 / SEEDS as f64).max(0.0);
        let mut hi = (best_t + 1.0 / SEEDS as f64).min(1.0);
        for _ in 0..60 {
            let m1 = lo + (hi - lo) / 3.0;
            let m2 = hi - (hi - lo) / 3.0;
            if eval(m1) < eval(m2) {
                lo = m1;
            } else {
                hi = m2;
            }
        }
        let t = (lo + hi) / 2.0;
        (t, sign * eval(t))
    }

    /// Maximum exposure along a segment (see
    /// [`ExposureModel::extreme_exposure_on_segment`]).
    pub fn max_exposure_on_segment(
        &self,
        rects: &[Rect],
        a: (f64, f64),
        b: (f64, f64),
    ) -> (f64, f64) {
        self.extreme_exposure_on_segment(rects, a, b, false)
    }

    /// Minimum exposure along a segment — the gap's bridging (saddle)
    /// exposure when the segment is the line of closest approach.
    pub fn min_exposure_on_segment(
        &self,
        rects: &[Rect],
        a: (f64, f64),
        b: (f64, f64),
    ) -> (f64, f64) {
        self.extreme_exposure_on_segment(rects, a, b, true)
    }

    /// The printed position of an isolated long edge at drawn coordinate 0:
    /// where exposure crosses the threshold along the edge normal. For
    /// threshold 0.5 this is 0 (drawn = printed); other thresholds model
    /// over/under-exposure bias. Returns the signed offset (positive =
    /// printed feature extends beyond drawn edge).
    pub fn edge_bias(&self) -> f64 {
        // Solve erf(d / (√2 σ)) = 1 - 2·threshold by bisection.
        let target = 1.0 - 2.0 * self.threshold;
        let mut lo = -6.0 * self.sigma;
        let mut hi = 6.0 * self.sigma;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            let v = erf(mid / (self.sigma * std::f64::consts::SQRT_2));
            if v < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Convenience: a very large box centred on the origin, for calibration
/// tests.
pub fn huge_box() -> Rect {
    let k: Coord = 1_000_000;
    Rect::new(-k, -k, k, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExposureModel {
        ExposureModel::new(125.0, 0.5)
    }

    #[test]
    fn deep_interior_exposure_is_one() {
        let m = model();
        let v = m.exposure(&[huge_box()], 0.0, 0.0);
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn far_outside_exposure_is_zero() {
        let m = model();
        let v = m.exposure(&[Rect::new(0, 0, 500, 500)], 5000.0, 5000.0);
        assert!(v < 1e-9);
    }

    #[test]
    fn edge_of_large_feature_is_half() {
        let m = model();
        // On the edge of a huge box (far from corners).
        let v = m.exposure(&[huge_box()], -1_000_000.0, 0.0);
        assert!((v - 0.5).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn corner_of_large_feature_is_quarter() {
        let m = model();
        let v = m.exposure(&[huge_box()], -1_000_000.0, -1_000_000.0);
        assert!((v - 0.25).abs() < 1e-6, "got {v}");
    }

    #[test]
    fn narrow_line_underexposed() {
        // A line 1σ wide never reaches full exposure — the physics behind
        // the relational endcap rule (Fig. 14).
        let m = model();
        let line = Rect::new(0, 0, 125, 100_000);
        let centre = m.exposure(&[line], 62.5, 50_000.0);
        assert!(centre < 0.5, "1σ line centre exposure {centre}");
        let wide = Rect::new(0, 0, 1250, 100_000);
        let centre_wide = m.exposure(&[wide], 625.0, 50_000.0);
        assert!(centre_wide > 0.999);
    }

    #[test]
    fn proximity_raises_exposure_between_features() {
        // Two lines close together: the gap midpoint sees more exposure
        // than the same point next to a single line — the proximity effect.
        let m = model();
        let a = Rect::new(0, 0, 500, 10_000);
        let b = Rect::new(700, 0, 1200, 10_000);
        let solo = m.exposure(&[a], 600.0, 5_000.0);
        let both = m.exposure(&[a, b], 600.0, 5_000.0);
        assert!(both > solo * 1.5, "solo={solo} both={both}");
    }

    #[test]
    fn additivity_of_disjoint_boxes() {
        let m = model();
        let a = Rect::new(0, 0, 300, 300);
        let b = Rect::new(300, 0, 600, 300);
        let whole = Rect::new(0, 0, 600, 300);
        let p = (150.0, 150.0);
        let split = m.exposure(&[a, b], p.0, p.1);
        let joined = m.exposure(&[whole], p.0, p.1);
        assert!((split - joined).abs() < 1e-9);
    }

    #[test]
    fn min_on_segment_finds_gap_saddle() {
        let m = model();
        let a = Rect::new(0, 0, 500, 1000);
        let b = Rect::new(750, 0, 1250, 1000);
        // The saddle sits mid-gap; for a 2σ gap it stays below threshold
        // (the features print separately).
        let (t, v) = m.min_exposure_on_segment(&[a, b], (500.0, 500.0), (750.0, 500.0));
        assert!(v < 0.5, "saddle exposure {v} should be below threshold");
        assert!(v > 0.2, "saddle exposure {v} unreasonably low for a 2σ gap");
        assert!(t > 0.2 && t < 0.8, "saddle at t={t}");
        // Max along the same segment is at a feature edge (>= 0.5).
        let (_, vmax) = m.max_exposure_on_segment(&[a, b], (500.0, 500.0), (750.0, 500.0));
        assert!(vmax >= 0.5);
    }

    #[test]
    fn edge_bias_zero_at_half_threshold() {
        let m = model();
        assert!(m.edge_bias().abs() < 1.0);
        // Under-exposure (higher threshold) pulls the edge in.
        let under = ExposureModel::new(125.0, 0.7);
        assert!(under.edge_bias() < -10.0);
        // Over-exposure pushes it out.
        let over = ExposureModel::new(125.0, 0.3);
        assert!(over.edge_bias() > 10.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn invalid_sigma_panics() {
        let _ = ExposureModel::new(0.0, 0.5);
    }
}
