//! Printed-image computation and the proximity-effect expand (Fig. 13).
//!
//! The paper's Fig. 13 contrasts three expansions of the same drawn
//! geometry: **orthogonal** (square corners), **Euclidean** (rounded
//! corners), and **proximity-effect** (computed by convolving the Gaussian
//! exposure with the mask and clipping — corners pull in, nearby features
//! bloom toward each other). This module renders all three on a grid so
//! the experiment harness can compare areas and contours.

use crate::exposure::ExposureModel;
use diic_geom::{Coord, Rect, Region};

/// A boolean image of where the resist prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrintedImage {
    bounds: Rect,
    resolution: Coord,
    width: usize,
    height: usize,
    bits: Vec<bool>,
}

impl PrintedImage {
    /// Computes the printed image of a box mask over `bounds` at
    /// `resolution` units per pixel (pixel centres are sampled).
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 1` or `bounds` is degenerate.
    pub fn compute(rects: &[Rect], model: &ExposureModel, bounds: Rect, resolution: Coord) -> Self {
        assert!(resolution >= 1);
        assert!(!bounds.is_degenerate());
        let width = ((bounds.width() + resolution - 1) / resolution) as usize;
        let height = ((bounds.height() + resolution - 1) / resolution) as usize;
        let mut bits = vec![false; width * height];
        for py in 0..height {
            let y = bounds.y1 as f64 + (py as f64 + 0.5) * resolution as f64;
            for px in 0..width {
                let x = bounds.x1 as f64 + (px as f64 + 0.5) * resolution as f64;
                bits[py * width + px] = model.prints(rects, x, y);
            }
        }
        PrintedImage {
            bounds,
            resolution,
            width,
            height,
            bits,
        }
    }

    /// Printed area in layout units².
    pub fn area(&self) -> i128 {
        let set = self.bits.iter().filter(|&&b| b).count() as i128;
        set * self.resolution as i128 * self.resolution as i128
    }

    /// True if the pixel containing the layout point prints.
    pub fn contains(&self, x: Coord, y: Coord) -> bool {
        if x < self.bounds.x1 || y < self.bounds.y1 {
            return false;
        }
        let px = ((x - self.bounds.x1) / self.resolution) as usize;
        let py = ((y - self.bounds.y1) / self.resolution) as usize;
        px < self.width && py < self.height && self.bits[py * self.width + px]
    }

    /// Printed extent along the horizontal line `y`: the min and max layout
    /// x of printing pixels, or `None` if nothing prints on that line.
    pub fn x_extent_at(&self, y: Coord) -> Option<(Coord, Coord)> {
        if y < self.bounds.y1 {
            return None;
        }
        let py = ((y - self.bounds.y1) / self.resolution) as usize;
        if py >= self.height {
            return None;
        }
        let row = &self.bits[py * self.width..(py + 1) * self.width];
        let first = row.iter().position(|&b| b)?;
        let last = row.iter().rposition(|&b| b)?;
        Some((
            self.bounds.x1 + first as Coord * self.resolution,
            self.bounds.x1 + (last as Coord + 1) * self.resolution,
        ))
    }

    /// Printed extent along the vertical line `x` (min/max layout y).
    pub fn y_extent_at(&self, x: Coord) -> Option<(Coord, Coord)> {
        if x < self.bounds.x1 {
            return None;
        }
        let px = ((x - self.bounds.x1) / self.resolution) as usize;
        if px >= self.width {
            return None;
        }
        let mut first = None;
        let mut last = None;
        for py in 0..self.height {
            if self.bits[py * self.width + px] {
                if first.is_none() {
                    first = Some(py);
                }
                last = Some(py);
            }
        }
        Some((
            self.bounds.y1 + first? as Coord * self.resolution,
            self.bounds.y1 + (last? as Coord + 1) * self.resolution,
        ))
    }
}

/// The three expansions of Fig. 13, as areas over the same grid, for a
/// drawn region expanded by `d`:
/// orthogonal (exact), Euclidean (exact-on-grid via distance), and
/// proximity (exposure model with the threshold lowered to move the printed
/// edge out by `d` — over-exposure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandComparison {
    /// Area of the orthogonal (L∞) expansion.
    pub orthogonal_area: f64,
    /// Area of the Euclidean (L2) expansion.
    pub euclidean_area: f64,
    /// Area of the proximity-effect (exposure) expansion.
    pub proximity_area: f64,
}

/// Computes the Fig. 13 comparison for a drawn mask.
///
/// The exposure expansion uses a threshold chosen so an isolated straight
/// edge moves out by exactly `d` (`threshold = (1 − erf(d/√2σ))/2`), making
/// the three expansions directly comparable: they agree on long straight
/// edges and differ at corners and between closely spaced features.
pub fn expand_comparison(
    region: &Region,
    d: Coord,
    sigma: f64,
    resolution: Coord,
) -> ExpandComparison {
    let bounds = region
        .bbox()
        .expect("non-empty region")
        .inflate(4 * d + 4 * sigma as Coord)
        .expect("inflate cannot fail");
    // Orthogonal: exact.
    let orth = diic_geom::size::expand(region, d).expect("non-negative expand");
    let orthogonal_area = orth.area() as f64;
    // Euclidean: raster with exact distance transform.
    let raster = diic_geom::Raster::from_region(region, bounds, resolution);
    let eucl = raster.euclidean_expand(d);
    let euclidean_area = eucl.area() as f64;
    // Proximity: exposure threshold moved so straight edges displace by d.
    let threshold = 0.5 * (1.0 - crate::erf::erf(d as f64 / (sigma * std::f64::consts::SQRT_2)));
    let model = ExposureModel::new(sigma, threshold.clamp(1e-6, 1.0 - 1e-6));
    let printed = PrintedImage::compute(region.rects(), &model, bounds, resolution);
    ExpandComparison {
        orthogonal_area,
        euclidean_area,
        proximity_area: printed.area() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExposureModel {
        ExposureModel::new(125.0, 0.5)
    }

    #[test]
    fn printed_image_of_large_square_matches_drawn() {
        let sq = Rect::new(0, 0, 2000, 2000);
        let img = PrintedImage::compute(&[sq], &model(), Rect::new(-500, -500, 2500, 2500), 10);
        let drawn_area = 2000.0 * 2000.0;
        let printed = img.area() as f64;
        // Corners round off slightly; area within 2%.
        assert!((printed - drawn_area).abs() / drawn_area < 0.02);
        assert!(img.contains(1000, 1000));
        assert!(!img.contains(-400, -400));
    }

    #[test]
    fn narrow_line_prints_thin_or_not_at_all() {
        // 0.8σ line: prints narrower than drawn (or vanishes).
        let line = Rect::new(0, 0, 100, 5000);
        let img = PrintedImage::compute(&[line], &model(), Rect::new(-300, -300, 400, 5300), 5);
        // A vanished line (None) is also acceptable physics.
        if let Some((x1, x2)) = img.x_extent_at(2500) {
            assert!(x2 - x1 < 100, "printed width {}", x2 - x1);
        }
    }

    #[test]
    fn endcap_retreats_on_narrow_line() {
        // Fig. 14 physics: the end of a narrow line retreats more than the
        // end of a wide line.
        let m = model();
        let narrow = Rect::new(0, 0, 250, 5000);
        let wide = Rect::new(0, 0, 1000, 5000);
        let img_n = PrintedImage::compute(&[narrow], &m, Rect::new(-500, -500, 750, 5500), 5);
        let img_w = PrintedImage::compute(&[wide], &m, Rect::new(-500, -500, 1500, 5500), 5);
        let end_n = img_n.y_extent_at(125).map(|(_, hi)| hi).unwrap_or(0);
        let end_w = img_w.y_extent_at(500).map(|(_, hi)| hi).unwrap_or(0);
        let retreat_n = 5000 - end_n;
        let retreat_w = 5000 - end_w;
        assert!(
            retreat_n > retreat_w,
            "narrow retreat {retreat_n} <= wide retreat {retreat_w}"
        );
    }

    #[test]
    fn fig13_expand_ordering() {
        // For a square: orthogonal ⊇ euclidean; proximity rounds corners
        // *and* loses a bit extra at convex corners (pulls in), so
        // orth > eucl >= prox (for an isolated feature).
        let sq = Region::from_rect(Rect::new(0, 0, 1500, 1500));
        let c = expand_comparison(&sq, 250, 125.0, 10);
        assert!(
            c.orthogonal_area > c.euclidean_area,
            "orth {} <= eucl {}",
            c.orthogonal_area,
            c.euclidean_area
        );
        assert!(
            c.euclidean_area >= c.proximity_area * 0.98,
            "eucl {} << prox {}",
            c.euclidean_area,
            c.proximity_area
        );
        // All three agree to first order (straight edges dominate).
        let drawn = 1500.0f64 * 1500.0;
        for v in [c.orthogonal_area, c.euclidean_area, c.proximity_area] {
            assert!(v > drawn, "{v} not an expansion");
            assert!((v - drawn) / drawn < 0.95, "{v} unreasonably large");
        }
    }

    #[test]
    fn proximity_blooms_between_close_features() {
        // Two bars with a gap of 1.2σ: the proximity expand merges them
        // while the Euclidean expand (same nominal d) does not.
        let bars =
            Region::from_rects([Rect::new(0, 0, 1000, 3000), Rect::new(1150, 0, 2150, 3000)]);
        let sigma = 125.0;
        let d = 40;
        let bounds = Rect::new(-500, -500, 2650, 3500);
        // Euclidean expand by d: gap of 150-2*40 = 70 remains.
        let raster = diic_geom::Raster::from_region(&bars, bounds, 5);
        let eucl = raster.euclidean_expand(d);
        // Mid-gap must not print under the euclidean expand.
        // (check via component count: still 2 components)
        assert_eq!(eucl.components().len(), 2);
        // Exposure model with matching edge displacement: mid-gap sees
        // double exposure and prints -> single component behaviour shows as
        // the midpoint printing.
        let threshold =
            0.5 * (1.0 - crate::erf::erf(d as f64 / (sigma * std::f64::consts::SQRT_2)));
        let m = ExposureModel::new(sigma, threshold);
        assert!(
            m.prints(bars.rects(), 1075.0, 1500.0),
            "mid-gap does not print: proximity effect missing"
        );
    }
}
