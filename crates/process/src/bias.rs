//! Worst-case bias and misalignment bookkeeping.
//!
//! "Modelling of bias and misalignment effects should in general be
//! different. Misalignment can be modelled by a simple translation while
//! bias effects are more complex." This module provides the simple linear
//! part of the story — per-layer bias (uniform over/under-sizing of printed
//! geometry) and inter-layer misalignment — which justifies the split of
//! spacing rules into same-layer (bias only) and cross-layer (bias +
//! misalignment) cases.

use diic_geom::Coord;

/// Worst-case linear process parameters for a layer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BiasModel {
    /// Worst-case outward bias of the first layer's printed edges.
    pub bias_a: Coord,
    /// Worst-case outward bias of the second layer's printed edges.
    pub bias_b: Coord,
    /// Worst-case translation between the two mask layers (0 for the same
    /// layer — a mask cannot be misaligned with itself).
    pub misalignment: Coord,
}

impl BiasModel {
    /// Same-layer model: only bias applies.
    pub fn same_layer(bias: Coord) -> Self {
        BiasModel {
            bias_a: bias,
            bias_b: bias,
            misalignment: 0,
        }
    }

    /// Cross-layer model: bias on each layer plus misalignment.
    pub fn cross_layer(bias_a: Coord, bias_b: Coord, misalignment: Coord) -> Self {
        BiasModel {
            bias_a,
            bias_b,
            misalignment,
        }
    }

    /// The effective remaining gap between two features drawn `drawn_gap`
    /// apart, under worst-case processing. Negative = they may touch/short.
    pub fn worst_case_gap(&self, drawn_gap: Coord) -> Coord {
        drawn_gap - self.bias_a - self.bias_b - self.misalignment
    }

    /// The minimum drawn spacing needed to guarantee `required_final` gap
    /// after processing — how paper-style spacing rules are derived from
    /// process physics.
    pub fn required_drawn_spacing(&self, required_final: Coord) -> Coord {
        required_final + self.bias_a + self.bias_b + self.misalignment
    }

    /// The effective printed width of a feature drawn `drawn_width` wide
    /// (worst-case *shrink* direction: bias works against you both ways).
    pub fn worst_case_width(&self, drawn_width: Coord) -> Coord {
        drawn_width - 2 * self.bias_a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_layer_has_no_misalignment() {
        let m = BiasModel::same_layer(100);
        assert_eq!(m.misalignment, 0);
        assert_eq!(m.worst_case_gap(500), 300);
    }

    #[test]
    fn cross_layer_budget() {
        let m = BiasModel::cross_layer(100, 50, 250);
        assert_eq!(m.worst_case_gap(500), 100);
        assert_eq!(m.required_drawn_spacing(100), 500);
    }

    #[test]
    fn rules_derivation_roundtrip() {
        let m = BiasModel::cross_layer(75, 125, 200);
        for want in [0, 100, 450] {
            let drawn = m.required_drawn_spacing(want);
            assert_eq!(m.worst_case_gap(drawn), want);
        }
    }

    #[test]
    fn width_shrinks_both_sides() {
        let m = BiasModel::same_layer(-50); // under-etch: features shrink
        assert_eq!(m.worst_case_width(500), 600);
        let over = BiasModel::same_layer(50);
        assert_eq!(over.worst_case_width(500), 400);
    }
}
