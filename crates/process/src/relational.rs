//! Relational rules (paper Fig. 14).
//!
//! "Relational rules are ones where one dimension of the structure depends
//! on another feature of the same structure. For example, the poly overlap
//! of the gate region on an MOS transistor is a function of the width of
//! the poly in some design rules to account for the 'retreat' of the end
//! on narrow wires. The fast way to check this rule \[...\] is to translate
//! in the direction to make the overlap smaller, calculate the exposure
//! function for the poly and for the diffusion along the line shown, clip
//! as before, and check if the poly has retreated beyond the diffusion."

use crate::exposure::ExposureModel;
use diic_geom::{Coord, Rect};

/// Computed endcap retreat of a wire end (positive = printed end sits
/// inside the drawn end).
///
/// The wire is modelled as a vertical bar `width × length` with its end at
/// `y = length`; we find where the exposure along the wire's centre line
/// drops below threshold.
pub fn endcap_retreat(width: Coord, model: &ExposureModel) -> f64 {
    let length: Coord = (20.0 * model.sigma) as Coord + 10 * width;
    let bar = Rect::new(0, 0, width, length);
    let cx = width as f64 / 2.0;
    // March down from the drawn end until the resist prints.
    let end = length as f64;
    let step = 0.25;
    let mut y = end + 6.0 * model.sigma;
    let floor = end - 6.0 * model.sigma - width as f64;
    while y > floor {
        if model.exposure(&[bar], cx, y) >= model.threshold {
            return end - y;
        }
        y -= step;
    }
    // Never printed: the whole (narrow) line vanished.
    f64::INFINITY
}

/// The Fig. 14 check: does the printed poly endcap still extend beyond the
/// printed far edge of the diffusion it crosses?
///
/// `poly` is a vertical bar crossing the horizontal `diff` bar; `overlap`
/// is the drawn poly extension beyond the diffusion's far edge. Translation
/// "in the direction to make the overlap smaller" is the misalignment
/// budget `misalignment`. Returns the printed margin (positive = rule met).
pub fn gate_overlap_margin(
    poly_width: Coord,
    drawn_overlap: Coord,
    diff_edge_y: Coord,
    model: &ExposureModel,
    misalignment: Coord,
) -> f64 {
    // Drawn poly end (after worst-case misalignment pulls it back).
    let drawn_end = diff_edge_y + drawn_overlap - misalignment;
    let length: Coord = drawn_end + (20.0 * model.sigma) as Coord;
    let poly = Rect::new(0, -length, poly_width, drawn_end);
    let cx = poly_width as f64 / 2.0;
    // Printed poly end: where exposure on the centre line crosses threshold.
    let mut printed_end = None;
    let mut y = drawn_end as f64 + 6.0 * model.sigma;
    let floor = drawn_end as f64 - 6.0 * model.sigma - poly_width as f64;
    while y > floor {
        if model.exposure(&[poly], cx, y) >= model.threshold {
            printed_end = Some(y);
            break;
        }
        y -= 0.25;
    }
    match printed_end {
        Some(end) => end - diff_edge_y as f64,
        None => f64::NEG_INFINITY, // line vanished entirely
    }
}

/// The relational rule verdict: required drawn overlap for a given poly
/// width such that the printed margin stays ≥ `required_margin`.
/// Demonstrates the width→overlap dependence of Fig. 14 by search.
pub fn required_overlap(
    poly_width: Coord,
    diff_edge_y: Coord,
    model: &ExposureModel,
    misalignment: Coord,
    required_margin: f64,
) -> Coord {
    let mut overlap = 0;
    loop {
        let margin = gate_overlap_margin(poly_width, overlap, diff_edge_y, model, misalignment);
        if margin >= required_margin {
            return overlap;
        }
        overlap += 25; // 0.1λ steps
        if overlap > 100 * 250 {
            return overlap; // unreachable safeguard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExposureModel {
        ExposureModel::new(125.0, 0.5)
    }

    #[test]
    fn wide_line_barely_retreats() {
        let r = endcap_retreat(1000, &model());
        assert!(r.abs() < 20.0, "retreat {r}");
    }

    #[test]
    fn narrow_line_retreats_more() {
        let m = model();
        let wide = endcap_retreat(1000, &m);
        let mid = endcap_retreat(400, &m);
        let narrow = endcap_retreat(250, &m);
        assert!(mid > wide, "mid {mid} <= wide {wide}");
        assert!(narrow > mid, "narrow {narrow} <= mid {mid}");
    }

    #[test]
    fn below_resolution_line_vanishes() {
        let r = endcap_retreat(60, &model());
        assert!(r.is_infinite());
    }

    #[test]
    fn gate_overlap_margin_decreases_with_narrow_poly() {
        let m = model();
        let wide = gate_overlap_margin(1000, 500, 0, &m, 0);
        let narrow = gate_overlap_margin(250, 500, 0, &m, 0);
        assert!(narrow < wide, "narrow {narrow} >= wide {wide}");
        assert!(wide > 400.0, "wide margin {wide}");
    }

    #[test]
    fn misalignment_reduces_margin() {
        let m = model();
        let aligned = gate_overlap_margin(500, 500, 0, &m, 0);
        let shifted = gate_overlap_margin(500, 500, 0, &m, 250);
        assert!((aligned - shifted - 250.0).abs() < 30.0);
    }

    #[test]
    fn required_overlap_grows_as_width_shrinks() {
        let m = model();
        let need_wide = required_overlap(1000, 0, &m, 0, 250.0);
        let need_narrow = required_overlap(250, 0, &m, 0, 250.0);
        assert!(
            need_narrow > need_wide,
            "narrow needs {need_narrow} <= wide needs {need_wide}"
        );
    }
}
