//! Exposure-based spacing checking (the paper's proposed technique).
//!
//! "Spacing calculation by this technique now reduces to finding 'the line
//! of closest approach'; translating one element along this line (if they
//! are on different layers), finding the maximum of the exposure function
//! (which will lie along this line), and comparing the value at this point
//! against some critical value. This technique, although still slower than
//! the expand-check-overlap technique, is more correct."

use crate::exposure::ExposureModel;
use diic_geom::{Coord, Rect};

/// The outcome of an exposure-based spacing check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExposureSpacing {
    /// The bridging (saddle) exposure: the lowest exposure along the line
    /// of closest approach (after any misalignment translation). The
    /// exposure field's ridge between two features runs along this line,
    /// so its lowest point decides whether the resist bridges the gap.
    pub bridge_exposure: f64,
    /// The critical value compared against (the model threshold).
    pub critical: f64,
    /// Drawn distance between the closest rectangles (Euclidean, in
    /// database units, before misalignment).
    pub drawn_distance: f64,
    /// True if the features would print merged (peak ≥ critical).
    pub violation: bool,
}

/// Runs the paper's exposure spacing predicate between two box sets.
///
/// * Finds the closest rectangle pair and the line of closest approach
///   between them.
/// * If `misalignment > 0` (different mask layers), translates set `b`
///   toward `a` along that line by the misalignment.
/// * Evaluates the bridging (saddle) exposure along the line and compares
///   it with the model threshold: if the resist prints all the way across
///   the gap, the features short.
///
/// Touching/overlapping inputs are immediate violations (drawn short).
pub fn exposure_spacing_check(
    a: &[Rect],
    b: &[Rect],
    model: &ExposureModel,
    misalignment: Coord,
) -> ExposureSpacing {
    // Closest pair.
    let mut best: Option<(i128, &Rect, &Rect)> = None;
    for ra in a {
        for rb in b {
            let d2 = ra.dist_sq(rb);
            if best.is_none_or(|(bd, _, _)| d2 < bd) {
                best = Some((d2, ra, rb));
            }
        }
    }
    let Some((d2, ra, rb)) = best else {
        return ExposureSpacing {
            bridge_exposure: 0.0,
            critical: model.threshold,
            drawn_distance: f64::INFINITY,
            violation: false,
        };
    };
    if d2 == 0 {
        return ExposureSpacing {
            bridge_exposure: 1.0,
            critical: model.threshold,
            drawn_distance: 0.0,
            violation: true,
        };
    }

    // Closest points on the two rectangles: per axis, either the facing
    // edge coordinates (disjoint intervals) or the midpoint of the interval
    // overlap — the middle of the facing span, where bridging exposure is
    // worst (a corner point would understate it).
    let (ax, bx) = closest_coords(ra.x1, ra.x2, rb.x1, rb.x2);
    let (ay, by) = closest_coords(ra.y1, ra.y2, rb.y1, rb.y2);
    let (ax, ay, bx, by) = (ax as f64, ay as f64, bx as f64, by as f64);
    let len = ((bx - ax).powi(2) + (by - ay).powi(2)).sqrt();

    // Misalignment: translate b toward a along the line of closest
    // approach (worst case).
    let (tb, translated): (Vec<Rect>, bool) = if misalignment > 0 && len > 0.0 {
        let ux = (ax - bx) / len;
        let uy = (ay - by) / len;
        let dx = (ux * misalignment as f64).round() as Coord;
        let dy = (uy * misalignment as f64).round() as Coord;
        (
            b.iter()
                .map(|r| r.translate(diic_geom::Vector::new(dx, dy)))
                .collect(),
            true,
        )
    } else {
        (b.to_vec(), false)
    };

    // Combined mask along the (post-translation) line of closest approach.
    let mut mask: Vec<Rect> = a.to_vec();
    mask.extend(tb.iter().copied());
    // Recompute the segment after translation.
    let (bx2, by2) = if translated {
        let ux = (ax - bx) / len;
        let uy = (ay - by) / len;
        (bx + ux * misalignment as f64, by + uy * misalignment as f64)
    } else {
        (bx, by)
    };
    let (_, saddle) = model.min_exposure_on_segment(&mask, (ax, ay), (bx2, by2));
    ExposureSpacing {
        bridge_exposure: saddle,
        critical: model.threshold,
        drawn_distance: (d2 as f64).sqrt(),
        violation: saddle >= model.threshold,
    }
}

fn closest_coords(a_lo: Coord, a_hi: Coord, b_lo: Coord, b_hi: Coord) -> (Coord, Coord) {
    if a_hi < b_lo {
        (a_hi, b_lo)
    } else if b_hi < a_lo {
        (a_lo, b_hi)
    } else {
        // Overlapping intervals: the line of closest approach may sit
        // anywhere in the overlap; its centre maximises bridging exposure.
        let lo = a_lo.max(b_lo);
        let hi = a_hi.min(b_hi);
        let mid = lo + (hi - lo) / 2;
        (mid, mid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExposureModel {
        ExposureModel::new(125.0, 0.5)
    }

    #[test]
    fn far_apart_passes() {
        let a = [Rect::new(0, 0, 1000, 1000)];
        let b = [Rect::new(3000, 0, 4000, 1000)];
        let r = exposure_spacing_check(&a, &b, &model(), 0);
        assert!(!r.violation);
        assert!(r.bridge_exposure < 0.5);
        assert!((r.drawn_distance - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn touching_is_violation() {
        let a = [Rect::new(0, 0, 1000, 1000)];
        let b = [Rect::new(1000, 0, 2000, 1000)];
        let r = exposure_spacing_check(&a, &b, &model(), 0);
        assert!(r.violation);
        assert_eq!(r.drawn_distance, 0.0);
    }

    #[test]
    fn close_gap_prints() {
        // Gap of 1σ between large features: the saddle exposure exceeds the
        // threshold — the resist bridges and the features short.
        let a = [Rect::new(0, 0, 2000, 2000)];
        let b = [Rect::new(2125, 0, 4125, 2000)];
        let r = exposure_spacing_check(&a, &b, &model(), 0);
        assert!(r.violation, "bridge {}", r.bridge_exposure);
    }

    #[test]
    fn misalignment_tightens_the_check() {
        // A 300-unit gap passes aligned (saddle ≈ 0.23) but fails once a
        // 250-unit misalignment squeezes it to 50 (saddle ≈ 0.84).
        let a = [Rect::new(0, 0, 2000, 2000)];
        let b = [Rect::new(2300, 0, 4300, 2000)];
        let aligned = exposure_spacing_check(&a, &b, &model(), 0);
        let misaligned = exposure_spacing_check(&a, &b, &model(), 250);
        assert!(misaligned.bridge_exposure > aligned.bridge_exposure);
        assert!(
            !aligned.violation,
            "aligned bridge {}",
            aligned.bridge_exposure
        );
        assert!(
            misaligned.violation,
            "misaligned bridge {}",
            misaligned.bridge_exposure
        );
    }

    #[test]
    fn diagonal_closest_approach() {
        // Corner-to-corner: line of closest approach is diagonal; the
        // exposure check is geometrically correct there (unlike L∞ expand).
        let a = [Rect::new(0, 0, 1000, 1000)];
        let b = [Rect::new(1400, 1400, 2400, 2400)];
        let r = exposure_spacing_check(&a, &b, &model(), 0);
        // Drawn distance is 400·√2 ≈ 566.
        assert!((r.drawn_distance - (2.0f64).sqrt() * 400.0).abs() < 1.0);
        assert!(!r.violation, "bridge {}", r.bridge_exposure);
        // The same centre distance edge-to-edge is closer to printing:
        let b2 = [Rect::new(1566, 0, 2566, 1000)];
        let r2 = exposure_spacing_check(&a, &b2, &model(), 0);
        assert!(r2.bridge_exposure > r.bridge_exposure);
    }

    #[test]
    fn empty_inputs_pass() {
        let a = [Rect::new(0, 0, 10, 10)];
        let r = exposure_spacing_check(&a, &[], &model(), 0);
        assert!(!r.violation);
        assert!(r.drawn_distance.is_infinite());
    }
}
