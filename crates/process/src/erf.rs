//! The error function, implemented from scratch.
//!
//! Uses the Abramowitz & Stegun 7.1.26 rational approximation
//! (|error| ≤ 1.5·10⁻⁷), which is far below any tolerance relevant to
//! exposure thresholds, composed with the odd symmetry `erf(−x) = −erf(x)`.

/// The error function `erf(x) = 2/√π ∫₀ˣ e^(−t²) dt`.
///
/// # Example
///
/// ```
/// let v = diic_process::erf(1.0);
/// assert!((v - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    // A&S 7.1.26 constants.
    const P: f64 = 0.327_591_1;
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    let t = 1.0 / (1.0 + P * x);
    let poly = t * (A1 + t * (A2 + t * (A3 + t * (A4 + t * A5))));
    1.0 - poly * (-x * x).exp()
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// The standard normal CDF, `Φ(x) = (1 + erf(x/√2)) / 2` — the form in
/// which the exposure integrals appear.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from tables (15 digits, truncated).
    const TABLE: &[(f64, f64)] = &[
        (0.0, 0.0),
        (0.1, 0.112462916018285),
        (0.5, 0.520499877813047),
        (1.0, 0.842700792949715),
        (1.5, 0.966105146475311),
        (2.0, 0.995322265018953),
        (3.0, 0.999977909503001),
    ];

    #[test]
    fn matches_reference_table() {
        for &(x, v) in TABLE {
            assert!((erf(x) - v).abs() < 2e-7, "erf({x}) = {} want {v}", erf(x));
        }
    }

    #[test]
    fn odd_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.9] {
            assert_eq!(erf(-x), -erf(x));
        }
    }

    #[test]
    fn limits() {
        assert!(erf(6.0) > 0.999_999_999);
        assert!(erf(-6.0) < -0.999_999_999);
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn monotone() {
        let mut prev = erf(-5.0);
        let mut x = -5.0;
        while x <= 5.0 {
            let v = erf(x);
            assert!(v + 1e-12 >= prev, "erf not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }

    #[test]
    fn normal_cdf_basics() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
    }
}
