//! # diic-process — 2-D process modelling for DRC (paper §"2-D Process
//! Modelling for DRC")
//!
//! The paper proposes evaluating spacing and relational rules with a
//! physical model instead of geometric expansion: convolve a Gaussian
//! exposure kernel with the mask (Eq. 1),
//!
//! ```text
//! I(p) = ∬ A·exp(−r²/2σ²) · M(r) dx dy
//! ```
//!
//! clip at the photoresist threshold, and ask whether the printed image
//! misbehaves. "If the mask function can be simplified to simple boxes or
//! other elemental geometries, then equation (1) for the exposure at each
//! point \[...\] has a closed form solution in terms of an error function."
//!
//! This crate implements:
//!
//! * [`erf()`](erf::erf) — the error function (no external math crates);
//! * [`ExposureModel`] — closed-form Gaussian exposure of box masks;
//! * [`proximity`] — printed-image computation and the proximity-effect
//!   expansion of Fig. 13 (Euclidean and orthogonal expands for contrast);
//! * [`spacing`] — the paper's spacing predicate: translate along the line
//!   of closest approach (misalignment), maximise exposure along it,
//!   compare against the critical value;
//! * [`relational`] — the Fig. 14 relational rule: poly endcap retreat as a
//!   function of wire width, and the gate-overlap check built on it;
//! * [`bias`] — worst-case bias / misalignment bookkeeping used by the
//!   simpler checks.

pub mod bias;
pub mod erf;
pub mod exposure;
pub mod proximity;
pub mod relational;
pub mod spacing;

pub use erf::erf;
pub use exposure::ExposureModel;
pub use proximity::PrintedImage;
pub use spacing::{exposure_spacing_check, ExposureSpacing};
