//! Error injection with ground truth.
//!
//! Each injector adds chip-level geometry (or swaps a cell for a broken
//! variant) and records what a perfect checker must report. Stub nets are
//! named with the `IO_` prefix so the *injected* error is the only error
//! (no collateral dangling-net reports).

use diic_geom::Rect;

/// The kinds of errors the generator can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// A metal stub narrower than minimum width.
    NarrowWire,
    /// A metal stub too close to the cell's output metal.
    CloseSpacing,
    /// A poly stub crossing a diff stub outside any device (Fig. 8).
    AccidentalTransistor,
    /// Two legal-width boxes butted end to end (Fig. 15).
    ButtedBoxes,
    /// A metal strap shorting VDD to GND.
    PowerGroundShort,
    /// A cell variant strapping the depletion pull-up to ground.
    DepletionToGround,
    /// A bus label on the ground rail.
    BusToRail,
    /// A cell variant whose pull-down has a 1λ gate overhang (needs 2λ).
    BadGateOverhang,
    /// A cell variant with a contact cut over the active gate (Fig. 7).
    ContactOverGate,
}

impl ErrorKind {
    /// All kinds, for sweeps.
    pub const ALL: [ErrorKind; 9] = [
        ErrorKind::NarrowWire,
        ErrorKind::CloseSpacing,
        ErrorKind::AccidentalTransistor,
        ErrorKind::ButtedBoxes,
        ErrorKind::PowerGroundShort,
        ErrorKind::DepletionToGround,
        ErrorKind::BusToRail,
        ErrorKind::BadGateOverhang,
        ErrorKind::ContactOverGate,
    ];

    /// True if injection swaps the cell symbol (vs adding stubs).
    pub fn is_variant(self) -> bool {
        matches!(
            self,
            ErrorKind::DepletionToGround | ErrorKind::BadGateOverhang | ErrorKind::ContactOverGate
        )
    }

    /// The ground-truth category a checker's report must match
    /// (see `diic_core::report::category_of`).
    pub fn category(self) -> &'static str {
        match self {
            ErrorKind::NarrowWire => "width",
            ErrorKind::CloseSpacing => "spacing",
            ErrorKind::AccidentalTransistor => "implied-device",
            ErrorKind::ButtedBoxes => "connection",
            ErrorKind::PowerGroundShort | ErrorKind::DepletionToGround | ErrorKind::BusToRail => {
                "erc"
            }
            ErrorKind::BadGateOverhang => "device-rule",
            ErrorKind::ContactOverGate => "contact-over-gate",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorKind::NarrowWire => "narrow-wire",
            ErrorKind::CloseSpacing => "close-spacing",
            ErrorKind::AccidentalTransistor => "accidental-transistor",
            ErrorKind::ButtedBoxes => "butted-boxes",
            ErrorKind::PowerGroundShort => "power-ground-short",
            ErrorKind::DepletionToGround => "depletion-to-ground",
            ErrorKind::BusToRail => "bus-to-rail",
            ErrorKind::BadGateOverhang => "bad-gate-overhang",
            ErrorKind::ContactOverGate => "contact-over-gate",
        };
        f.write_str(s)
    }
}

/// One ground-truth record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundTruthEntry {
    /// The injected kind.
    pub kind: ErrorKind,
    /// Location in chip coordinates; degenerate (zero-area) for errors
    /// without a meaningful location (ERC, definition-level device rules).
    pub location: Rect,
    /// Category for report matching.
    pub category: &'static str,
    /// Description.
    pub description: String,
}

impl GroundTruthEntry {
    /// Converts to the checker's accounting type.
    pub fn to_injected(&self) -> diic_core::InjectedError {
        diic_core::InjectedError {
            location: self.location,
            category: self.category,
            description: self.description.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_all_kinds() {
        for k in ErrorKind::ALL {
            assert!(!k.category().is_empty());
            assert!(!k.to_string().is_empty());
        }
    }

    #[test]
    fn variant_classification() {
        assert!(ErrorKind::BadGateOverhang.is_variant());
        assert!(!ErrorKind::NarrowWire.is_variant());
    }
}
