//! The NMOS cell library: device symbols and the inverter cell.
//!
//! All geometry is in database units (λ = 250). Cell coordinates were
//! designed against the `nmos_technology` rules; the crate's tests assert
//! every cell is rule-clean under the full pipeline.

use crate::{l, lh};
use std::fmt::Write as _;

/// Fixed CIF symbol ids for the library.
pub mod ids {
    /// Enhancement transistor.
    pub const TENH: u32 = 1;
    /// Depletion transistor.
    pub const TDEP: u32 = 2;
    /// Metal-diffusion contact.
    pub const CD: u32 = 3;
    /// Metal-poly contact.
    pub const CP: u32 = 4;
    /// Butting contact.
    pub const BC: u32 = 5;
    /// Diffusion resistor.
    pub const RES: u32 = 6;
    /// Broken enhancement transistor: short gate overhang (for injection).
    pub const TENH_SHORT: u32 = 7;
    /// Broken enhancement transistor: contact over the gate (Fig. 7).
    pub const TENH_CONTACT: u32 = 8;
    /// The inverter cell.
    pub const INV: u32 = 10;
    /// Inverter variant: pull-up drain strapped to ground (ERC demo).
    pub const INV_DEP_GND: u32 = 11;
    /// Inverter variant using the broken short-overhang transistor.
    pub const INV_BAD_TR: u32 = 12;
    /// Inverter variant using the contact-over-gate transistor.
    pub const INV_BAD_CONTACT: u32 = 13;
}

/// Horizontal cell pitch of the inverter (20λ).
pub const PITCH_X: i64 = l(20);
/// Vertical row pitch (44λ).
pub const PITCH_Y: i64 = l(44);

/// Emits the enhancement-transistor symbol definition.
pub fn tenh(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 tenh;\n9D NMOS_ENH;\n9T G NP {} 0;\n9T S ND {} {};\n9T D ND {} {};\nL NP; B {} {} {} 0;\nL ND; B {} {} {} 0;\nDF;",
        ids::TENH,
        -lh(3),            // G at (-1.5λ, 0)
        l(1), -l(4),       // S at (1λ, -4λ)
        l(1), l(4),        // D at (1λ, 4λ)
        l(6), l(2), l(1),  // poly 6λ x 2λ centred (1λ, 0)
        l(2), l(10), l(1), // diff 2λ x 10λ centred (1λ, 0)
    );
}

/// Emits the depletion-transistor symbol (same structure plus implant).
pub fn tdep(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 tdep;\n9D NMOS_DEP;\n9T G NP {} 0;\n9T S ND {} {};\n9T D ND {} {};\nL NP; B {} {} {} 0;\nL ND; B {} {} {} 0;\nL NI; B {} {} {} 0;\nDF;",
        ids::TDEP,
        -lh(3),
        l(1), -l(4),
        l(1), l(4),
        l(6), l(2), l(1),
        l(2), l(10), l(1),
        l(5), l(5), l(1), // implant 5λ x 5λ centred on the gate
    );
}

/// Emits the metal-diffusion contact symbol.
pub fn cd(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 cd;\n9D CONTACT_D;\n9T A NM 0 0;\n9T B ND 0 0;\nL NC; B {} {} 0 0;\nL ND; B {} {} 0 0;\nL NM; B {} {} 0 0;\nDF;",
        ids::CD,
        l(2), l(2),
        l(4), l(4),
        l(4), l(4),
    );
}

/// Emits the metal-poly contact symbol.
pub fn cp(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 cp;\n9D CONTACT_P;\n9T A NM 0 0;\n9T B NP 0 0;\nL NC; B {} {} 0 0;\nL NP; B {} {} 0 0;\nL NM; B {} {} 0 0;\nDF;",
        ids::CP,
        l(2), l(2),
        l(4), l(4),
        l(4), l(4),
    );
}

/// Emits the butting-contact symbol (paper Fig. 7, legal form).
pub fn bc(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 bc;\n9D BUTTING_CONTACT;\n9T A NP 0 {};\n9T B ND 0 {};\nL NP; B {} {} 0 {};\nL ND; B {} {} 0 {};\nL NC; B {} {} 0 0;\nL NM; B {} {} 0 0;\nDF;",
        ids::BC,
        -l(2), l(2),
        l(4), l(4), -l(1), // poly 4λx4λ centred (0,-1λ): y in [-3λ, 1λ]
        l(4), l(4), l(1),  // diff centred (0, 1λ): y in [-1λ, 3λ]
        l(2), l(2),
        l(4), l(4),
    );
}

/// Emits the diffusion-resistor symbol (Fig. 5b device).
pub fn res(out: &mut String) {
    let _ =
        writeln!(
        out,
        "DS {} 1 1;\n9 res;\n9D RESISTOR_D;\n9T A ND 0 {};\n9T B ND 0 {};\nL ND; B {} {} 0 0;\nDF;",
        ids::RES,
        -l(3), l(3),
        l(2), l(8), // body 2λ x 8λ
    );
}

/// Emits the broken transistor with only 1λ gate overhang.
pub fn tenh_short(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 tenh_short;\n9D NMOS_ENH;\n9T G NP {} 0;\n9T S ND {} {};\n9T D ND {} {};\nL NP; B {} {} {} 0;\nL ND; B {} {} {} 0;\nDF;",
        ids::TENH_SHORT,
        -lh(1),            // G at (-0.5λ, 0) — still on the shorter poly
        l(1), -l(4),
        l(1), l(4),
        l(4), l(2), l(1),  // poly only 4λ long: 1λ overhang each side
        l(2), l(10), l(1),
    );
}

/// Emits the broken transistor with a contact cut over the gate (Fig. 7a).
pub fn tenh_contact(out: &mut String) {
    let _ = writeln!(
        out,
        "DS {} 1 1;\n9 tenh_contact;\n9D NMOS_ENH;\n9T G NP {} 0;\n9T S ND {} {};\n9T D ND {} {};\nL NP; B {} {} {} 0;\nL ND; B {} {} {} 0;\nL NC; B {} {} {} 0;\nDF;",
        ids::TENH_CONTACT,
        -lh(3),
        l(1), -l(4),
        l(1), l(4),
        l(6), l(2), l(1),
        l(2), l(10), l(1),
        l(2), l(2), l(1), // the offending cut, right on the gate
    );
}

/// Emits the inverter cell body items (shared by all variants).
///
/// Layout (cell-local, λ units; origin = bottom-left of the active area):
/// GND rail y∈\[0,3\], VDD rail y∈\[37,40\], both spanning x∈\[-2,21\] so
/// adjacent cells' rails overlap by 3λ (skeletal connection). Pull-down
/// enhancement transistor at (4,11), pull-up depletion at (4,21); contacts
/// to both rails; gate of the pull-up tied to the output through a poly
/// contact; output leaves on poly at y=11 overlapping the next cell's
/// input wire.
fn inverter_body(out: &mut String, vdd_wire_up: bool) {
    // Rails.
    let _ = writeln!(
        out,
        "L NM; 9N GND; B {} {} {} {};",
        l(23),
        l(3),
        lh(19),
        lh(3)
    );
    let _ = writeln!(
        out,
        "L NM; 9N VDD; B {} {} {} {};",
        l(23),
        l(3),
        lh(19),
        lh(77)
    );
    // GND contact (cd) and its strap to the rail.
    let _ = writeln!(out, "C {} T {} {};", ids::CD, l(4), lh(11)); // centre (4, 5.5)λ
    let _ = writeln!(
        out,
        "L NM; 9N GND; W {} {} {} {} {};",
        l(3),
        l(4),
        lh(3),
        l(4),
        lh(11)
    );
    // Pull-down enhancement transistor at (4λ, 11λ).
    let _ = writeln!(out, "C {} T {} {};", ids::TENH, l(4), l(11));
    // Input poly wire to the gate terminal (G at cell (2.5λ, 11λ)).
    let _ = writeln!(
        out,
        "L NP; 9N in; W {} {} {} {} {};",
        l(2),
        -l(1),
        l(11),
        lh(5),
        l(11)
    );
    // Output diffusion wire joining enh D (5,15) and dep S (5,17).
    let _ = writeln!(
        out,
        "L ND; 9N out; W {} {} {} {} {};",
        l(2),
        l(5),
        l(14),
        l(5),
        l(18)
    );
    // Pull-up depletion transistor at (4λ, 21λ).
    let _ = writeln!(out, "C {} T {} {};", ids::TDEP, l(4), l(21));
    // Gate tie: one poly wire from G (2.5,21) straight down into the poly
    // contact. It deliberately runs 0.5λ from the transistor diffusions and
    // the output diffusion — legal for DIIC (same net / related device,
    // Figs. 5a & 12) but a guaranteed false error for a topology-blind
    // mask-level checker.
    let _ = writeln!(
        out,
        "L NP; 9N out; W {} {} {} {} {};",
        l(2),
        lh(5),
        l(21),
        lh(5),
        l(17)
    );
    // Poly contact joining the tie to the output metal, at (1λ, 16λ).
    let _ = writeln!(out, "C {} T {} {};", ids::CP, l(1), l(16));
    // Output metal wire.
    let _ = writeln!(
        out,
        "L NM; 9N out; W {} {} {} {} {};",
        l(3),
        l(1),
        l(16),
        l(13),
        l(16)
    );
    // Poly contact back to poly for the cell output, at (13λ, 16λ).
    let _ = writeln!(out, "C {} T {} {};", ids::CP, l(13), l(16));
    // Output poly: down to y=11 and right past the cell edge to overlap
    // the next cell's input wire.
    let _ = writeln!(
        out,
        "L NP; 9N out; W {} {} {} {} {};",
        l(2),
        l(13),
        l(16),
        l(13),
        l(11)
    );
    let _ = writeln!(
        out,
        "L NP; 9N out; W {} {} {} {} {};",
        l(2),
        l(13),
        l(11),
        l(22),
        l(11)
    );
    // VDD contact (cd) above the pull-up, at (5λ, 28λ).
    let _ = writeln!(out, "C {} T {} {};", ids::CD, l(5), l(28));
    // Diffusion strap from dep D (5,25) into the VDD contact.
    let _ = writeln!(
        out,
        "L ND; 9N VDD; W {} {} {} {} {};",
        l(2),
        l(5),
        l(24),
        l(5),
        l(27)
    );
    if vdd_wire_up {
        // Metal strap from the VDD contact up to the VDD rail.
        let _ = writeln!(
            out,
            "L NM; 9N VDD; W {} {} {} {} {};",
            l(3),
            l(5),
            l(28),
            l(5),
            lh(77)
        );
    } else {
        // ERC-broken variant: the strap runs DOWN to the ground rail,
        // putting the depletion pull-up on GND (rule 4 + leaves VDD rail
        // only powering the contact).
        let _ = writeln!(
            out,
            "L NM; W {} {} {} {} {};",
            l(3),
            l(4),
            l(27),
            l(4),
            lh(3)
        );
    }
}

/// Emits the standard inverter symbol.
pub fn inverter(out: &mut String) {
    let _ = writeln!(out, "DS {} 1 1;\n9 inv;", ids::INV);
    inverter_body(out, true);
    let _ = writeln!(out, "DF;");
}

/// Emits a **content-unique** variant of the standard inverter symbol
/// (same id, same devices, same nets — still rule-clean): the body plus
/// one extra same-net metal box sitting fully inside the GND rail, at
/// an x position derived from `tag`. Distinct tags give the definition
/// distinct flattened geometry, which is exactly what defeats
/// content-keyed candidate-cache sharing — the knob behind
/// `cell_library`'s controllable overlap ratio.
pub fn inverter_unique(out: &mut String, tag: u32) {
    let _ = writeln!(out, "DS {} 1 1;\n9 inv;", ids::INV);
    inverter_body(out, true);
    // Both rails span x∈[-2,21]λ and are 3λ tall; a 4×3λ box whose
    // centre sits in [0,19]λ stays inside its rail for every tag. The
    // centres land on database resolution (λ/250), giving ~4751²
    // distinguishable tag classes — enough that a 10⁴-cell library's
    // "unique" cells collide only incidentally.
    let span = l(19) + 1;
    let x0 = (tag as i64) % span;
    let x1 = ((tag as i64) / span) % span;
    let _ = writeln!(out, "L NM; 9N GND; B {} {} {} {};", l(4), l(3), x0, lh(3));
    let _ = writeln!(out, "L NM; 9N VDD; B {} {} {} {};", l(4), l(3), x1, lh(77));
    let _ = writeln!(out, "DF;");
}

/// Emits the ERC-broken inverter (pull-up strapped to ground).
pub fn inverter_dep_gnd(out: &mut String) {
    let _ = writeln!(out, "DS {} 1 1;\n9 inv_dep_gnd;", ids::INV_DEP_GND);
    inverter_body(out, false);
    let _ = writeln!(out, "DF;");
}

/// Emits an inverter variant whose pull-down uses a broken transistor
/// symbol (`which` = [`ids::TENH_SHORT`] or [`ids::TENH_CONTACT`]).
pub fn inverter_with_bad_transistor(out: &mut String, variant_id: u32, which: u32) {
    let name = if which == ids::TENH_SHORT {
        "inv_bad_tr"
    } else {
        "inv_bad_contact"
    };
    let _ = writeln!(out, "DS {variant_id} 1 1;\n9 {name};");
    // Same body but with the pull-down swapped; re-emit with substitution.
    let mut body = String::new();
    inverter_body(&mut body, true);
    let needle = format!("C {} T {} {};", ids::TENH, l(4), l(11));
    let replacement = format!("C {} T {} {};", which, l(4), l(11));
    let _ = write!(out, "{}", body.replace(&needle, &replacement));
    let _ = writeln!(out, "DF;");
}

/// Emits the whole cell library.
pub fn library(out: &mut String) {
    tenh(out);
    tdep(out);
    cd(out);
    cp(out);
    bc(out);
    res(out);
    tenh_short(out);
    tenh_contact(out);
    inverter(out);
    inverter_dep_gnd(out);
    inverter_with_bad_transistor(out, ids::INV_BAD_TR, ids::TENH_SHORT);
    inverter_with_bad_transistor(out, ids::INV_BAD_CONTACT, ids::TENH_CONTACT);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_parses() {
        let mut cif = String::new();
        library(&mut cif);
        cif.push_str("E\n");
        let layout = diic_cif::parse(&cif).unwrap();
        assert_eq!(layout.symbols().len(), 12);
        assert!(layout.symbol_by_name("inv").is_some());
        assert!(layout.symbol_by_name("tenh").is_some());
    }

    #[test]
    fn device_symbols_have_terminals() {
        let mut cif = String::new();
        library(&mut cif);
        cif.push_str("E\n");
        let layout = diic_cif::parse(&cif).unwrap();
        let tenh = layout.symbol(layout.symbol_by_name("tenh").unwrap());
        let dev = tenh.device.as_ref().unwrap();
        assert_eq!(dev.device_type, "NMOS_ENH");
        assert_eq!(dev.terminals.len(), 3);
    }
}
