//! Random [`EditSet`] generation for the incremental differential
//! oracle.
//!
//! Each call produces one small, valid edit batch against the layout's
//! *current* state (indices are checked against `top_items`), mixing
//! benign edits (add a clean wire, move or remove an item, replace a
//! cell definition with a nudged copy) with `inject`-style fault edits
//! (a narrow stub, a too-close pair) so edit sequences both create and
//! destroy violations. Deterministic per RNG state, like the chip
//! generator itself.

use diic_cif::{Item, Layout, Shape};
use diic_core::incremental::{Edit, EditSet};
use diic_geom::{Rect, Transform, Vector};
use rand::rngs::StdRng;
use rand::RngCore;

use crate::l;

/// Uniform coordinate in `lo..=hi`, snapped to quarter-λ.
fn coord_in(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    let span = (hi - lo).max(1) as u64;
    let raw = lo + rng.next_below(span) as i64;
    raw - raw.rem_euclid(l(1) / 4)
}

/// A random point inside `bounds` (quarter-λ grid).
fn point_in(rng: &mut StdRng, bounds: &Rect) -> (i64, i64) {
    (
        coord_in(rng, bounds.x1, bounds.x2),
        coord_in(rng, bounds.y1, bounds.y2),
    )
}

/// Generates one edit batch against the layout's current state.
///
/// `bounds` is where added geometry lands (normally the chip extent,
/// slightly inflated); `step` tags declared nets so repeated edits do
/// not alias each other's names.
pub fn random_edit_set(layout: &Layout, bounds: Rect, step: usize, rng: &mut StdRng) -> EditSet {
    let mut edits = EditSet::new();
    let n_items = layout.top_items().len();
    match rng.next_below(11) {
        // Clean metal wire, sometimes on a declared chip-I/O net (the
        // `IO_` prefix is exempt from the dangling-net rule).
        0 | 1 => {
            let (x, y) = point_in(rng, &bounds);
            let net = (rng.next_below(2) == 0).then(|| format!("IO_EDIT{step}"));
            edits.edits.push(Edit::AddElement {
                cif_layer: "NM".to_string(),
                shape: Shape::Box(Rect::new(x, y, x + l(8), y + l(3))),
                net,
            });
        }
        // Fault: a metal stub narrower than minimum width.
        2 => {
            let (x, y) = point_in(rng, &bounds);
            edits.add_box("NM", Rect::new(x, y, x + l(8), y + l(3) - 50), None);
        }
        // Fault: two legal wires half a rule apart (metal spacing is
        // 3λ; the gap here is 2λ).
        3 => {
            let (x, y) = point_in(rng, &bounds);
            edits.add_box("NM", Rect::new(x, y, x + l(8), y + l(3)), None);
            edits.add_box("NM", Rect::new(x, y + l(5), x + l(8), y + l(8)), None);
        }
        // Remove a random top-level item.
        4 | 5 if n_items > 0 => {
            edits.remove(rng.next_below(n_items as u64) as usize);
        }
        // Move a random top-level item by a few λ.
        6..=8 if n_items > 0 => {
            let index = rng.next_below(n_items as u64) as usize;
            let dx = rng.next_below(17) as i64 - 8;
            let dy = rng.next_below(17) as i64 - 8;
            edits.translate(index, l(dx), l(dy));
        }
        // Instantiate an existing cell definition at a fresh spot — the
        // `AddCall` edit kind. The instance name carries the step so
        // repeated edits do not alias each other (top-level call names
        // key the hierarchical search's scope map).
        9 if !layout.symbols().is_empty() => {
            let si = rng.next_below(layout.symbols().len() as u64) as usize;
            let (x, y) = point_in(rng, &bounds);
            edits.add_call(
                diic_cif::SymbolId(si as u32),
                Transform::translate(Vector::new(x, y)),
                &format!("edit{step}c"),
            );
        }
        // Replace a random cell definition with a nudged copy of its
        // own body (every instance re-checks).
        _ if !layout.symbols().is_empty() => {
            let si = rng.next_below(layout.symbols().len() as u64) as usize;
            let sym = diic_cif::SymbolId(si as u32);
            let dv = Vector::new(
                l(rng.next_below(3) as i64 - 1),
                l(rng.next_below(3) as i64 - 1),
            );
            let t = Transform::translate(dv);
            let items: Vec<Item> = layout
                .symbol(sym)
                .items
                .iter()
                .map(|item| match item {
                    Item::Element(e) => {
                        let mut e = e.clone();
                        e.shape = e.shape.transformed(&t);
                        Item::Element(e)
                    }
                    Item::Call(c) => {
                        let mut c = c.clone();
                        c.transform = t.after(&c.transform);
                        Item::Call(c)
                    }
                })
                .collect();
            edits.replace_symbol(sym, items);
        }
        // Fallback when the preferred kind is impossible on an empty
        // layout: add a clean wire.
        _ => {
            let (x, y) = point_in(rng, &bounds);
            edits.add_box("NM", Rect::new(x, y, x + l(8), y + l(3)), None);
        }
    }
    edits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, ChipSpec};
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        let chip = generate(&ChipSpec::clean(2, 1));
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let bounds = Rect::new(0, 0, l(40), l(40));
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..8)
                .map(|s| random_edit_set(&layout, bounds, s, &mut rng).edits.len())
                .collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..8)
                .map(|s| random_edit_set(&layout, bounds, s, &mut rng).edits.len())
                .collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&n| n >= 1));
    }

    #[test]
    fn edit_sets_apply_cleanly() {
        use diic_core::incremental::CheckSession;
        use diic_core::CheckOptions;
        use diic_tech::nmos::nmos_technology;
        let chip = generate(&ChipSpec::clean(2, 1));
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let tech = nmos_technology();
        let mut session = CheckSession::new(layout, &tech, &CheckOptions::default());
        let bounds = Rect::new(-l(10), -l(20), l(40), l(30));
        let mut rng = StdRng::seed_from_u64(11);
        for step in 0..8 {
            let edits = random_edit_set(session.layout(), bounds, step, &mut rng);
            session.apply(&edits).expect("generated edits are valid");
        }
    }
}
