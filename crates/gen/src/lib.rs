//! # diic-gen — synthetic NMOS workloads with ground truth
//!
//! The paper evaluated its checker on Caltech Silicon Structures Project
//! chips; those are not available, so this crate synthesises NMOS layouts
//! of configurable size in the extended CIF the checker consumes, together
//! with a **ground-truth ledger** of every injected error — which is what
//! the Fig. 1 error-region accounting (real / false / unchecked) needs.
//!
//! The base workload is an `nx × ny` array of a hand-designed, rule-clean
//! NMOS inverter cell (enhancement pull-down, depletion pull-up, two
//! diffusion contacts, two poly contacts, declared devices and terminals).
//! Inverters in a row form a chain; row inputs/outputs are chip I/O nets.
//! Error injectors add width, spacing, connection, implied-device,
//! device-rule and electrical errors at deterministic pseudo-random
//! locations.

pub mod cells;
pub mod chip;
pub mod decks;
pub mod edits;
pub mod inject;
pub mod library;

pub use chip::{generate, mega_chip, ChipSpec, GeneratedChip};
pub use decks::random_deck;
pub use edits::random_edit_set;
pub use inject::{ErrorKind, GroundTruthEntry};
pub use library::{cell_library, cell_library_with, GeneratedLibrary, LibrarySpec};

/// λ in database units for all generated layouts (matches
/// [`diic_tech::nmos::nmos_technology`]).
pub const LAMBDA: i64 = 250;

/// Converts λ to database units.
pub const fn l(lambdas: i64) -> i64 {
    lambdas * LAMBDA
}

/// Converts half-λ to database units (for 1.5λ-style coordinates).
pub const fn lh(half_lambdas: i64) -> i64 {
    half_lambdas * LAMBDA / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_helpers() {
        assert_eq!(l(2), 500);
        assert_eq!(lh(3), 375);
        assert_eq!(lh(4), l(2));
    }
}
