//! Chip assembly: inverter arrays with chained rows, demo cells, and
//! injected errors.

use crate::cells::{self, ids, PITCH_X, PITCH_Y};
use crate::inject::{ErrorKind, GroundTruthEntry};
use crate::l;
use diic_geom::Rect;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

/// What to generate.
#[derive(Debug, Clone)]
pub struct ChipSpec {
    /// Columns of inverters per row (chained left to right).
    pub nx: usize,
    /// Rows.
    pub ny: usize,
    /// Errors to inject (each consumes one distinct cell).
    pub errors: Vec<ErrorKind>,
    /// Include the butting-contact and resistor demo cells below the array.
    pub demo_cells: bool,
    /// Build the golden (intended) net list for the array. On by
    /// default; [`mega_chip`] turns it off — at 10⁷ elements the golden
    /// net list alone would cost gigabytes, and the mega workloads never
    /// compare against it.
    pub golden_netlist: bool,
    /// RNG seed for error placement.
    pub seed: u64,
    /// Make the inverter *definition* content-unique: `Some(tag)` emits
    /// [`cells::inverter_unique`] (one extra clean same-net box at a
    /// tag-dependent position) instead of the stock [`cells::inverter`]
    /// under the same symbol id. `None` (the default) shares the stock
    /// definition — chips generated with equal tags (or all with
    /// `None`) have content-identical inverter subcells, which is what
    /// the library batch's content-keyed candidate cache shares across
    /// cells; distinct tags defeat that sharing on purpose.
    pub unique_tag: Option<u32>,
}

impl ChipSpec {
    /// A clean array.
    pub fn clean(nx: usize, ny: usize) -> Self {
        ChipSpec {
            nx,
            ny,
            errors: Vec::new(),
            demo_cells: true,
            golden_netlist: true,
            seed: 42,
            unique_tag: None,
        }
    }

    /// An array with the given injected errors.
    pub fn with_errors(nx: usize, ny: usize, errors: Vec<ErrorKind>, seed: u64) -> Self {
        ChipSpec {
            errors,
            seed,
            ..ChipSpec::clean(nx, ny)
        }
    }
}

/// A generated chip.
#[derive(Debug, Clone)]
pub struct GeneratedChip {
    /// Extended-CIF text.
    pub cif: String,
    /// Ground truth for the injected errors.
    pub ground_truth: Vec<GroundTruthEntry>,
    /// The intended (golden) net list of the clean array, for consistency
    /// checking. Only meaningful for clean chips.
    pub intended_netlist: diic_netlist::Netlist,
    /// Cells in the array.
    pub cell_count: usize,
}

impl GeneratedChip {
    /// Ground truth in the checker's accounting type.
    pub fn injected(&self) -> Vec<diic_core::InjectedError> {
        self.ground_truth.iter().map(|g| g.to_injected()).collect()
    }
}

/// Generates a chip per the spec.
///
/// # Panics
///
/// Panics if more errors are requested than cells exist (each error needs
/// its own cell).
pub fn generate(spec: &ChipSpec) -> GeneratedChip {
    let total_cells = spec.nx * spec.ny;
    assert!(
        spec.errors.len() <= total_cells,
        "need at least one cell per injected error"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Assign each error a distinct cell.
    let mut cell_order: Vec<usize> = (0..total_cells).collect();
    cell_order.shuffle(&mut rng);
    let assignments: Vec<(ErrorKind, usize)> =
        spec.errors.iter().copied().zip(cell_order).collect();

    let mut cif = String::new();
    let mut ground_truth = Vec::new();

    // Library: base symbols always; broken variants only when used (their
    // definitions would otherwise add un-injected definition errors).
    cells::tenh(&mut cif);
    cells::tdep(&mut cif);
    cells::cd(&mut cif);
    cells::cp(&mut cif);
    match spec.unique_tag {
        Some(tag) => cells::inverter_unique(&mut cif, tag),
        None => cells::inverter(&mut cif),
    }
    if spec.demo_cells {
        cells::bc(&mut cif);
        cells::res(&mut cif);
    }
    let uses = |k: ErrorKind| assignments.iter().any(|(e, _)| *e == k);
    if uses(ErrorKind::DepletionToGround) {
        cells::inverter_dep_gnd(&mut cif);
    }
    if uses(ErrorKind::BadGateOverhang) {
        cells::tenh_short(&mut cif);
        cells::inverter_with_bad_transistor(&mut cif, ids::INV_BAD_TR, ids::TENH_SHORT);
    }
    if uses(ErrorKind::ContactOverGate) {
        cells::tenh_contact(&mut cif);
        cells::inverter_with_bad_transistor(&mut cif, ids::INV_BAD_CONTACT, ids::TENH_CONTACT);
    }

    // Which variant (if any) each cell uses. Built once so the array
    // loop stays O(cells) rather than O(cells × errors) — at mega-chip
    // scale the linear scan per cell would dominate generation.
    let variant_map: std::collections::HashMap<usize, u32> = assignments
        .iter()
        .filter(|(kind, _)| kind.is_variant())
        .map(|(kind, c)| {
            let id = match kind {
                ErrorKind::DepletionToGround => ids::INV_DEP_GND,
                ErrorKind::BadGateOverhang => ids::INV_BAD_TR,
                ErrorKind::ContactOverGate => ids::INV_BAD_CONTACT,
                _ => unreachable!(),
            };
            (*c, id)
        })
        .collect();
    let variant_of = |cell: usize| -> u32 { variant_map.get(&cell).copied().unwrap_or(ids::INV) };

    // The array.
    for row in 0..spec.ny {
        let oy = row as i64 * PITCH_Y;
        for col in 0..spec.nx {
            let ox = col as i64 * PITCH_X;
            let cell = row * spec.nx + col;
            let _ = writeln!(cif, "C {} T {} {};", variant_of(cell), ox, oy);
        }
        // Row I/O labels (exempt from the dangling-net rule).
        let _ = writeln!(cif, "9L IO_IN{} NP 0 {};", row, oy + l(11));
        let _ = writeln!(
            cif,
            "9L IO_OUT{} NP {} {};",
            row,
            (spec.nx as i64 - 1) * PITCH_X + l(22),
            oy + l(11)
        );
    }

    // Demo cells below the array.
    if spec.demo_cells {
        // Butting contact with its three wires.
        let (bx, by) = (l(8), -l(12));
        let _ = writeln!(cif, "C {} T {} {};", ids::BC, bx, by);
        let _ = writeln!(
            cif,
            "L NP; 9N IO_BC; W {} {} {} {} {};",
            l(2),
            bx,
            by - l(2),
            bx,
            by - l(8)
        );
        let _ = writeln!(
            cif,
            "L ND; 9N IO_BC; W {} {} {} {} {};",
            l(2),
            bx,
            by + l(2),
            bx,
            by + l(8)
        );
        let _ = writeln!(
            cif,
            "L NM; 9N IO_BC; W {} {} {} {} {};",
            l(3),
            bx,
            by,
            bx + l(8),
            by
        );
        // Resistor with end wires.
        let (rx, ry) = (l(32), -l(12));
        let _ = writeln!(cif, "C {} T {} {};", ids::RES, rx, ry);
        let _ = writeln!(
            cif,
            "L ND; 9N IO_RA; W {} {} {} {} {};",
            l(2),
            rx,
            ry - l(3),
            rx,
            ry - l(8)
        );
        let _ = writeln!(
            cif,
            "L ND; 9N IO_RB; W {} {} {} {} {};",
            l(2),
            rx,
            ry + l(3),
            rx,
            ry + l(8)
        );
    }

    // Stub-based injections.
    for (idx, (kind, cell)) in assignments.iter().enumerate() {
        let row = cell / spec.nx;
        let col = cell % spec.nx;
        let (ox, oy) = (col as i64 * PITCH_X, row as i64 * PITCH_Y);
        let at = |x: i64, y: i64| (ox + x, oy + y);
        match kind {
            ErrorKind::NarrowWire => {
                let (cx, cy) = at(3375, 5600);
                let _ = writeln!(cif, "L NM; 9N IO_W{idx}; B 2000 700 {cx} {cy};");
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(cx - 1000, cy - 350, cx + 1000, cy + 350),
                    category: kind.category(),
                    description: format!("{kind} stub in cell {cell}"),
                });
            }
            ErrorKind::CloseSpacing => {
                let (cx, cy) = at(3375, 5250);
                let _ = writeln!(cif, "L NM; 9N IO_S{idx}; B 2000 750 {cx} {cy};");
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(cx - 1000, cy - 375, cx + 1000, cy + 375),
                    category: kind.category(),
                    description: format!("{kind} stub in cell {cell}"),
                });
            }
            ErrorKind::AccidentalTransistor => {
                let (cx, cy) = at(3250, 8250);
                let _ = writeln!(cif, "L ND; 9N IO_X{idx}; B 1500 500 {cx} {cy};");
                let _ = writeln!(cif, "L NP; 9N IO_Y{idx}; B 500 1500 {cx} {cy};");
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(cx - 250, cy - 250, cx + 250, cy + 250),
                    category: kind.category(),
                    description: format!("{kind} in cell {cell}"),
                });
            }
            ErrorKind::ButtedBoxes => {
                let (x1, y1) = at(2925, 5625);
                let (x2, _) = at(4025, 5625);
                let _ = writeln!(cif, "L NM; 9N IO_B{idx}; B 1100 750 {x1} {y1};");
                let _ = writeln!(cif, "L NM; 9N IO_B{idx}; B 1100 750 {x2} {y1};");
                let butt_x = x1 + 550;
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(butt_x - 100, y1 - 375, butt_x + 100, y1 + 375),
                    category: kind.category(),
                    description: format!("{kind} in cell {cell}"),
                });
            }
            ErrorKind::PowerGroundShort => {
                let (cx, _) = at(2500, 0);
                let _ = writeln!(cif, "L NM; W 750 {} {} {} {};", cx, oy + 375, cx, oy + 9625);
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(0, 0, 0, 0),
                    category: kind.category(),
                    description: format!("{kind} in cell {cell}"),
                });
            }
            ErrorKind::BusToRail => {
                let (cx, cy) = at(2750, 375);
                let _ = writeln!(cif, "L NM; B 2000 750 {cx} {cy};");
                let _ = writeln!(cif, "9L BUS_INJ{idx} NM {cx} {cy};");
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(0, 0, 0, 0),
                    category: kind.category(),
                    description: format!("{kind} in cell {cell}"),
                });
            }
            ErrorKind::DepletionToGround
            | ErrorKind::BadGateOverhang
            | ErrorKind::ContactOverGate => {
                // Variant cells were placed above; record ground truth.
                ground_truth.push(GroundTruthEntry {
                    kind: *kind,
                    location: Rect::new(0, 0, 0, 0),
                    category: kind.category(),
                    description: format!("{kind} variant in cell {cell}"),
                });
            }
        }
    }

    cif.push_str("E\n");

    GeneratedChip {
        cif,
        ground_truth,
        intended_netlist: if spec.golden_netlist {
            intended_netlist(spec)
        } else {
            diic_netlist::NetlistBuilder::new().finish()
        },
        cell_count: total_cells,
    }
}

/// A library-scale clean workload: the smallest near-square inverter
/// array whose **flattened element count** reaches `target_elements` —
/// the chip the bounded-memory pipeline (sharded instantiation, tiled
/// interactions, streaming and spilling sinks) is sized against. At
/// `10^6`–`10^7` the CIF text stays modest (one call line per cell —
/// hierarchy is the point) while the instantiated view carries millions
/// of elements. The golden net list is skipped: the mega workloads never
/// run net-list consistency, and at `10^7` elements the golden list
/// alone would rival the chip view in memory.
///
/// No demo cells and no injected errors: the array is rule-clean, so a
/// checker that reports anything on it is wrong, which is what the
/// release-mode CI smoke asserts.
pub fn mega_chip(target_elements: u64) -> GeneratedChip {
    // Probe one cell for its flattened element count (the cell library
    // is code, not data — measuring beats hard-coding a constant that
    // silently drifts when the cell changes). A 1×1 array adds two row
    // labels but labels are not elements.
    let probe = generate(&ChipSpec {
        demo_cells: false,
        golden_netlist: false,
        ..ChipSpec::clean(1, 1)
    });
    let probe_layout = diic_cif::parse(&probe.cif).expect("generated chips always parse");
    let per_cell = diic_cif::hierarchy::stats(&probe_layout)
        .flat_element_count
        .max(1);
    let cells = target_elements.div_ceil(per_cell).max(1);
    let nx = (cells as f64).sqrt().ceil() as usize;
    let ny = (cells as usize).div_ceil(nx);
    generate(&ChipSpec {
        demo_cells: false,
        golden_netlist: false,
        ..ChipSpec::clean(nx, ny)
    })
}

/// Builds the golden net list of the **clean** array (inverter chains per
/// row, plus the demo cells when enabled).
pub fn intended_netlist(spec: &ChipSpec) -> diic_netlist::Netlist {
    use diic_tech::DeviceClass;
    let mut b = diic_netlist::NetlistBuilder::new();
    for row in 0..spec.ny {
        for col in 0..spec.nx {
            let n_in = format!("r{row}n{col}");
            let n_out = format!("r{row}n{}", col + 1);
            let cell = format!("r{row}c{col}");
            b.add_device(
                &format!("{cell}.pd"),
                "NMOS_ENH",
                DeviceClass::MosEnhancement,
                &[("G", n_in.as_str()), ("S", "GND"), ("D", n_out.as_str())],
            );
            b.add_device(
                &format!("{cell}.pu"),
                "NMOS_DEP",
                DeviceClass::MosDepletion,
                &[("G", n_out.as_str()), ("S", n_out.as_str()), ("D", "VDD")],
            );
            b.add_device(
                &format!("{cell}.cgnd"),
                "CONTACT_D",
                DeviceClass::Contact,
                &[("A", "GND"), ("B", "GND")],
            );
            b.add_device(
                &format!("{cell}.cvdd"),
                "CONTACT_D",
                DeviceClass::Contact,
                &[("A", "VDD"), ("B", "VDD")],
            );
            b.add_device(
                &format!("{cell}.cp1"),
                "CONTACT_P",
                DeviceClass::Contact,
                &[("A", n_out.as_str()), ("B", n_out.as_str())],
            );
            b.add_device(
                &format!("{cell}.cp2"),
                "CONTACT_P",
                DeviceClass::Contact,
                &[("A", n_out.as_str()), ("B", n_out.as_str())],
            );
        }
    }
    if spec.demo_cells {
        b.add_device(
            "bc0",
            "BUTTING_CONTACT",
            DeviceClass::ButtingContact,
            &[("A", "IO_BC"), ("B", "IO_BC")],
        );
        b.add_device(
            "res0",
            "RESISTOR_D",
            DeviceClass::Resistor,
            &[("A", "IO_RA"), ("B", "IO_RB")],
        );
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_chip_parses() {
        let chip = generate(&ChipSpec::clean(3, 2));
        let layout = diic_cif::parse(&chip.cif).unwrap();
        assert_eq!(chip.cell_count, 6);
        assert!(layout.symbols().len() >= 5);
        let stats = diic_cif::hierarchy::stats(&layout);
        assert!(stats.flat_element_count > 0);
    }

    #[test]
    fn injected_chip_has_ground_truth() {
        let chip = generate(&ChipSpec::with_errors(
            4,
            2,
            vec![ErrorKind::NarrowWire, ErrorKind::PowerGroundShort],
            7,
        ));
        assert_eq!(chip.ground_truth.len(), 2);
        diic_cif::parse(&chip.cif).unwrap();
    }

    #[test]
    fn deterministic_for_same_seed() {
        let spec = ChipSpec::with_errors(3, 3, vec![ErrorKind::CloseSpacing], 9);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.cif, b.cif);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    #[should_panic(expected = "one cell per injected error")]
    fn too_many_errors_panics() {
        generate(&ChipSpec::with_errors(
            1,
            1,
            vec![ErrorKind::NarrowWire; 2],
            1,
        ));
    }

    #[test]
    fn mega_chip_reaches_its_element_target() {
        let chip = mega_chip(2_000);
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let stats = diic_cif::hierarchy::stats(&layout);
        assert!(
            stats.flat_element_count >= 2_000,
            "got {} flattened elements",
            stats.flat_element_count
        );
        // Near-square and not wildly overshooting: at most one extra
        // row/column of cells beyond the target.
        let per_cell = stats.flat_element_count / chip.cell_count as u64;
        assert!(
            stats.flat_element_count
                < 2_000 + 2 * per_cell * (chip.cell_count as f64).sqrt() as u64,
            "overshot: {} elements for target 2000",
            stats.flat_element_count
        );
        assert!(chip.ground_truth.is_empty(), "mega chip is clean");
        assert_eq!(
            chip.intended_netlist.device_count(),
            0,
            "mega chips skip the golden net list"
        );
    }

    #[test]
    fn golden_netlist_gate_controls_intended_netlist() {
        let with = generate(&ChipSpec::clean(2, 1));
        assert!(with.intended_netlist.device_count() > 0);
        let without = generate(&ChipSpec {
            golden_netlist: false,
            ..ChipSpec::clean(2, 1)
        });
        assert_eq!(without.intended_netlist.device_count(), 0);
        // The gate only affects the golden net list, never the layout.
        assert_eq!(with.cif, without.cif);
    }

    #[test]
    fn intended_netlist_scales() {
        let n = intended_netlist(&ChipSpec::clean(2, 2));
        assert_eq!(n.device_count(), 2 * 2 * 6 + 2);
    }
}
