//! Random rule-deck generation for the deck-compilation differential
//! leg.
//!
//! [`random_deck`] emits the *text* of a `diic-deck` rule deck (this
//! crate deliberately does not depend on the deck crate — the
//! differential tests compile the text through `diic::deck` and run
//! the checker under the resulting technology). Every generated deck
//! is a **recall-preserving variation** of the built-in NMOS
//! technology: layers, CIF names, minimum widths, devices and their
//! internal rules are identical, and spacing distances only ever
//! *tighten* (grow) — so any fault `inject` plants against the
//! baseline rules still measures under its rule's threshold and must
//! be flagged under the generated deck too. On top of that a deck may
//! declare a `same_mask` rule on metal, exercising the
//! multi-patterning check under the fault corpus.

/// A deterministic spacing pick: the baseline distance in λ, plus a
/// seed-dependent tightening of 0–2 λ.
fn widen(seed: u64, salt: u64, base: i64) -> i64 {
    // splitmix64 — tiny, deterministic, and independent of the rand
    // compat shim so deck text never changes underneath the corpus.
    let mut z = seed ^ (salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    base + (z % 3) as i64
}

/// Generates one rule deck as text, deterministically from `seed`.
///
/// The deck compiles to a technology that differs from
/// [`diic_tech::nmos::nmos_technology`] only in (some) spacing
/// distances — never loosened — and, for two seeds in three, a
/// `same_mask` distance on metal strictly above the metal spacing
/// rule.
pub fn random_deck(seed: u64) -> String {
    let diff_diff = widen(seed, 1, 3);
    let poly_poly = widen(seed, 2, 2);
    let metal_metal = widen(seed, 3, 3);
    let contact_contact = widen(seed, 4, 2);
    let same_mask = match seed % 3 {
        0 => String::new(),
        r => format!(
            "    same_mask metal {} lambda;\n",
            metal_metal + 1 + r as i64
        ),
    };
    format!(
        r#"# Generated deck (seed {seed}): the NMOS baseline with tightened
# spacing rules — recall-preserving for the injected-fault corpus.
tech "nmos-gen-{seed}" {{
    lambda 250;

    layer diff    {{ cif "ND"; kind diffusion; min_width 2 lambda; }}
    layer poly    {{ cif "NP"; kind poly;      min_width 2 lambda; }}
    layer contact {{ cif "NC"; kind contact;   min_width 2 lambda; }}
    layer metal   {{ cif "NM"; kind metal;     min_width 3 lambda; }}
    layer implant {{ cif "NI"; kind implant;   min_width 2 lambda; }}
    layer buried  {{ cif "NB"; kind buried;    min_width 2 lambda; }}
    layer glass   {{ cif "NG"; kind glass;     min_width 2 lambda; }}

    space diff diff {diff_diff} lambda;
    space poly poly {poly_poly} lambda;
    space metal metal {metal_metal} lambda;
    space poly diff 1 lambda {{ unrelated_device 1 lambda; }}
    space contact contact {contact_contact} lambda;
    space buried buried 2 lambda;
    space buried diff 2 lambda;
{same_mask}
    device NMOS_ENH mos_enhancement {{
        requires_overlap poly diff;
        gate_extension poly poly diff 2 lambda;
        gate_extension diff poly diff 2 lambda;
        no_layer_over_gate contact poly diff;
        terminals G S D;
    }}

    device NMOS_DEP mos_depletion {{
        requires_overlap poly diff;
        requires_layer implant;
        gate_extension poly poly diff 2 lambda;
        gate_extension diff poly diff 2 lambda;
        overlap_enclosure poly diff in implant 3/2 lambda;
        no_layer_over_gate contact poly diff;
        terminals G S D;
    }}

    device CONTACT_D contact {{
        requires_layer contact;
        min_width contact 2 lambda;
        enclosure contact in diff 1 lambda;
        enclosure contact in metal 1 lambda;
        terminals A B;
    }}

    device CONTACT_P contact {{
        requires_layer contact;
        min_width contact 2 lambda;
        enclosure contact in poly 1 lambda;
        enclosure contact in metal 1 lambda;
        terminals A B;
    }}

    device BUTTING_CONTACT butting_contact {{
        requires_layer contact;
        requires_overlap poly diff;
        enclosure contact in metal 1 lambda;
        terminals A B;
    }}

    device BURIED_CONTACT buried_contact {{
        requires_layer buried;
        requires_overlap poly diff;
        overlap_enclosure poly diff in buried 1 lambda;
        terminals A B;
    }}

    device RESISTOR_D resistor {{
        requires_layer diff;
        override diff diff {diff_diff} lambda same_net;
        terminals A B;
    }}

    power VDD;
    ground GND VSS;
    bus_prefix "BUS_";
    io_prefix "IO_";
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_deck(7), random_deck(7));
        assert_ne!(random_deck(7), random_deck(8));
    }

    #[test]
    fn spacing_only_tightens() {
        for seed in 0..32 {
            let deck = random_deck(seed);
            for (pair, base) in [
                ("space diff diff", 3),
                ("space poly poly", 2),
                ("space metal metal", 3),
                ("space contact contact", 2),
            ] {
                let line = deck
                    .lines()
                    .find(|l| l.trim_start().starts_with(pair))
                    .unwrap_or_else(|| panic!("seed {seed}: missing `{pair}`"));
                let d: i64 = line
                    .split_whitespace()
                    .nth(3)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("seed {seed}: unparsable `{line}`"));
                assert!(d >= base, "seed {seed}: `{line}` loosens the {base}λ rule");
                assert!(d <= base + 2, "seed {seed}: `{line}` overshoots");
            }
        }
    }

    #[test]
    fn same_mask_appears_and_exceeds_spacing() {
        let mut with = 0;
        for seed in 0..12 {
            let deck = random_deck(seed);
            if let Some(line) = deck
                .lines()
                .find(|l| l.trim_start().starts_with("same_mask metal"))
            {
                with += 1;
                let mask: i64 = line.split_whitespace().nth(2).unwrap().parse().unwrap();
                let space: i64 = deck
                    .lines()
                    .find(|l| l.trim_start().starts_with("space metal metal"))
                    .unwrap()
                    .split_whitespace()
                    .nth(3)
                    .unwrap()
                    .parse()
                    .unwrap();
                assert!(
                    mask > space,
                    "seed {seed}: same_mask {mask}λ must exceed spacing {space}λ"
                );
            }
        }
        assert!(with >= 4, "expected same_mask decks among 12 seeds: {with}");
    }
}
