//! Variant-library generation: many small cells with deliberately
//! shared subcell definitions.
//!
//! A standard-cell library batch (`diic_core::check_library`) wins
//! exactly where sibling cells share definition *content* — its
//! candidate cache is content-keyed, so the claim "X% shared subcells
//! gives Y% cache hits" needs a workload whose overlap ratio is a
//! **knob**, not an accident. [`LibrarySpec::shared_fraction`] is that
//! knob: a *shared* cell uses the stock inverter definition
//! (content-identical across every shared cell in the library), while
//! a *unique* cell uses [`crate::cells::inverter_unique`] — the same
//! devices and nets plus clean tag-positioned rail boxes, so its
//! definition content collides with (almost) nothing. Faulted cells
//! ([`LibrarySpec::error_rate`]) carry one injected error each, with
//! the usual ground-truth ledger, so the batch-vs-standalone
//! byte-identity oracle exercises dirty reports too.

use crate::chip::{generate, ChipSpec, GeneratedChip};
use crate::inject::ErrorKind;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// What library to generate.
#[derive(Debug, Clone)]
pub struct LibrarySpec {
    /// Number of cells (each a small inverter row with its own
    /// definitions — one `Layout` per cell).
    pub cells: usize,
    /// Fraction of cells using the stock (content-shared) inverter
    /// definition; the rest get tag-unique definitions.
    pub shared_fraction: f64,
    /// Probability that a cell carries one injected error.
    pub error_rate: f64,
    /// RNG seed: cell shapes, tags, and error choices all derive from
    /// it deterministically.
    pub seed: u64,
}

impl LibrarySpec {
    /// The default library shape: half the cells share the stock
    /// definition, one cell in five is faulted.
    pub fn new(cells: usize, seed: u64) -> Self {
        LibrarySpec {
            cells,
            shared_fraction: 0.5,
            error_rate: 0.2,
            seed,
        }
    }
}

/// A generated cell library.
#[derive(Debug, Clone)]
pub struct GeneratedLibrary {
    /// The cells, each with its own CIF text and ground truth.
    pub cells: Vec<GeneratedChip>,
    /// How many cells use the stock (shared) inverter definition.
    pub shared_cells: usize,
    /// How many cells carry an injected error.
    pub faulted_cells: usize,
}

/// [`cell_library_with`] under [`LibrarySpec::new`]'s defaults — the
/// shape the benches and the differential oracle use.
pub fn cell_library(n: usize, seed: u64) -> GeneratedLibrary {
    cell_library_with(&LibrarySpec::new(n, seed))
}

/// Generates a cell library per the spec. Cells are 2–4 inverters in a
/// row (no demo cells, no golden net list — library cells are checked
/// for rule cleanliness, not netlist consistency), deterministic for a
/// given spec.
pub fn cell_library_with(spec: &LibrarySpec) -> GeneratedLibrary {
    // Uniform draw in [0,1) from the seeded stream; RngCore only, so
    // the output is pinned by the rand version already in the tree.
    fn chance(rng: &mut StdRng, p: f64) -> bool {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut cells = Vec::with_capacity(spec.cells);
    let mut shared_cells = 0usize;
    let mut faulted_cells = 0usize;
    for i in 0..spec.cells {
        let nx = 2 + (rng.next_u64() % 3) as usize;
        let shared = chance(&mut rng, spec.shared_fraction);
        let unique_tag = if shared {
            shared_cells += 1;
            None
        } else {
            Some(rng.next_u64() as u32)
        };
        let errors = if chance(&mut rng, spec.error_rate) {
            faulted_cells += 1;
            let kind = ErrorKind::ALL[(rng.next_u64() % ErrorKind::ALL.len() as u64) as usize];
            vec![kind]
        } else {
            Vec::new()
        };
        cells.push(generate(&ChipSpec {
            errors,
            demo_cells: false,
            golden_netlist: false,
            seed: spec.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            unique_tag,
            ..ChipSpec::clean(nx, 1)
        }));
    }
    GeneratedLibrary {
        cells,
        shared_cells,
        faulted_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_deterministic_and_parses() {
        let a = cell_library(12, 7);
        let b = cell_library(12, 7);
        assert_eq!(a.cells.len(), 12);
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.cif, cb.cif);
            assert_eq!(ca.ground_truth, cb.ground_truth);
            diic_cif::parse(&ca.cif).unwrap();
        }
        assert_eq!(a.shared_cells, b.shared_cells);
        assert_eq!(a.faulted_cells, b.faulted_cells);
    }

    #[test]
    fn shared_fraction_is_a_real_knob() {
        let all = cell_library_with(&LibrarySpec {
            shared_fraction: 1.0,
            ..LibrarySpec::new(20, 3)
        });
        assert_eq!(all.shared_cells, 20);
        let none = cell_library_with(&LibrarySpec {
            shared_fraction: 0.0,
            ..LibrarySpec::new(20, 3)
        });
        assert_eq!(none.shared_cells, 0);
        let mixed = cell_library(200, 3);
        assert!(
            (60..=140).contains(&mixed.shared_cells),
            "shared_fraction 0.5 gave {} of 200",
            mixed.shared_cells
        );
    }

    #[test]
    fn error_rate_populates_ground_truth() {
        let lib = cell_library_with(&LibrarySpec {
            error_rate: 1.0,
            ..LibrarySpec::new(10, 11)
        });
        assert_eq!(lib.faulted_cells, 10);
        for cell in &lib.cells {
            assert_eq!(cell.ground_truth.len(), 1);
        }
        let clean = cell_library_with(&LibrarySpec {
            error_rate: 0.0,
            ..LibrarySpec::new(10, 11)
        });
        assert_eq!(clean.faulted_cells, 0);
        assert!(clean.cells.iter().all(|c| c.ground_truth.is_empty()));
    }

    #[test]
    fn unique_cells_differ_in_definition_content() {
        let lib = cell_library_with(&LibrarySpec {
            shared_fraction: 0.0,
            error_rate: 0.0,
            ..LibrarySpec::new(6, 5)
        });
        // Every pair of unique cells should emit different CIF (the
        // tag boxes move), even when their array widths agree.
        for i in 0..lib.cells.len() {
            for j in (i + 1)..lib.cells.len() {
                assert_ne!(lib.cells[i].cif, lib.cells[j].cif, "cells {i} and {j}");
            }
        }
    }
}
