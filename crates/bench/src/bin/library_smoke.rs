//! Release-mode library smoke: generate a thousand-cell variant
//! library, batch-verify it over the shared content-keyed caches, and
//! assert the byte-identity contract plus a throughput floor.
//!
//! ```text
//! cargo run -p diic-bench --bin library_smoke --release -- [cells] [min_cells_per_second]
//! ```
//!
//! The run verifies the library twice: a loop of standalone `check()`
//! calls (the per-cell baseline and the identity oracle) and one
//! `check_library` batch on all cores. It asserts:
//!
//! * every batch per-cell report is byte-identical to its standalone
//!   counterpart (violations, net list, interaction stats, counts);
//! * the content-keyed candidate cache actually hit across cells
//!   (the library generator makes half the cells share definition
//!   content, so zero hits means the mechanism regressed);
//! * batch throughput meets the cells/second floor (0 disables).
//!
//! CI wraps this in `/usr/bin/time -v` and additionally gates peak RSS:
//! with candidate fills shared by content and the session interners
//! compacted between cells, resident memory scales with the largest
//! cell plus the shared cache — not with the library size.

use diic_core::{check, check_library_buffered, LibraryOptions};
use diic_tech::nmos::nmos_technology;
use std::time::Instant;

fn main() {
    let cells: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("cells must be a number"))
        .unwrap_or(1000);
    let floor: f64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("min_cells_per_second must be a number"))
        .unwrap_or(0.0);

    let t0 = Instant::now();
    let lib = diic_gen::cell_library(cells, 80);
    let layouts: Vec<diic_cif::Layout> = lib
        .cells
        .iter()
        .map(|c| diic_cif::parse(&c.cif).expect("generated cells always parse"))
        .collect();
    println!(
        "generated + parsed {cells} cells ({} shared-content, {} faulted) in {:.1}s",
        lib.shared_cells,
        lib.faulted_cells,
        t0.elapsed().as_secs_f64()
    );

    let tech = nmos_technology();
    let options = LibraryOptions::default();

    let t0 = Instant::now();
    let standalone: Vec<_> = layouts
        .iter()
        .map(|l| check(l, &tech, &options.cell))
        .collect();
    let t_loop = t0.elapsed();
    println!(
        "standalone loop: {:.1}s ({:.0} cells/s)",
        t_loop.as_secs_f64(),
        cells as f64 / t_loop.as_secs_f64()
    );

    let t0 = Instant::now();
    let batch = check_library_buffered(&layouts, &tech, &options);
    let elapsed = t0.elapsed();
    let cells_per_second = cells as f64 / elapsed.as_secs_f64();
    println!(
        "batch (shared caches, all cores): {:.1}s ({cells_per_second:.0} cells/s, ×{:.2} vs loop)",
        elapsed.as_secs_f64(),
        t_loop.as_secs_f64() / elapsed.as_secs_f64()
    );
    println!(
        "shared cache: {} hits / {} misses ({} entries, {} cached pairs); \
         interner: {} compactions, peak {} strings / {:.1} MB",
        batch.stats.shared_cache_hits,
        batch.stats.shared_cache_misses,
        batch.stats.shared_cache_entries,
        batch.stats.shared_cache_pairs,
        batch.stats.interner_compactions,
        batch.stats.interner_peak_strings,
        batch.stats.interner_peak_bytes as f64 / 1e6
    );
    println!(
        "cell wall clock: p50 {:.2} ms, p99 {:.2} ms",
        batch.profile.p50().as_secs_f64() * 1e3,
        batch.profile.p99().as_secs_f64() * 1e3
    );

    assert_eq!(batch.reports.len(), standalone.len());
    for (i, (b, s)) in batch.reports.iter().zip(&standalone).enumerate() {
        assert_eq!(b.violations, s.violations, "cell {i}: violations diverge");
        assert_eq!(b.netlist, s.netlist, "cell {i}: net list diverges");
        assert_eq!(
            b.interact_stats, s.interact_stats,
            "cell {i}: stats diverge"
        );
        assert_eq!(b.element_count, s.element_count, "cell {i}");
        assert_eq!(b.device_count, s.device_count, "cell {i}");
    }
    println!("all {cells} per-cell reports byte-identical to standalone checks");

    assert!(
        batch.stats.shared_cache_hits > 0,
        "a half-shared library must hit the content-keyed cache: {:?}",
        batch.stats
    );
    assert!(
        cells_per_second >= floor,
        "batch throughput {cells_per_second:.0} cells/s below the floor {floor:.0}"
    );

    // Self-reported peak RSS (VmHWM) — the same number CI's
    // `/usr/bin/time -v` gates on, available where that tool is not.
    let peak_kb = diic_bench::peak_rss_kb();
    if peak_kb > 0 {
        println!("peak RSS {:.0} MB (VmHWM)", peak_kb as f64 / 1e3);
    }
    println!("library smoke OK");
}
