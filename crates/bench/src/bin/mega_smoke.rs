//! Release-mode mega-chip smoke: generate a library-scale clean array,
//! run the bounded-memory pipeline over it (sharded instantiation,
//! tiled interactions, counting sink — nothing violation-shaped is ever
//! buffered), and assert the verdict.
//!
//! ```text
//! cargo run -p diic-bench --bin mega_smoke --release -- [target_elements]
//! ```
//!
//! CI wraps this in `/usr/bin/time -v` and enforces a peak-RSS ceiling:
//! with candidate memory bounded by the widest tile instead of the
//! total pair count, resident memory scales with the instantiated view,
//! not with the all-pairs list. Exits non-zero (panics) if the clean
//! chip reports any violation or the tiled peak is not bounded.

use diic_core::{check_with_sink, CheckOptions, CountingSink, StageEngine};
use diic_tech::nmos::nmos_technology;
use std::time::Instant;

fn main() {
    let target: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("target_elements must be a number"))
        .unwrap_or(1_000_000);

    let t0 = Instant::now();
    let chip = diic_gen::mega_chip(target);
    let layout = diic_cif::parse(&chip.cif).expect("generated chips always parse");
    println!(
        "generated + parsed {} cells in {:.1}s",
        chip.cell_count,
        t0.elapsed().as_secs_f64()
    );

    let tech = nmos_technology();
    let options = CheckOptions {
        erc: false,
        parallelism: 0,
        ..CheckOptions::default() // tiled interactions are the default
    };
    let mut sink = CountingSink::new();
    let t0 = Instant::now();
    let report = check_with_sink(
        &StageEngine::diic_pipeline(),
        &layout,
        &tech,
        &options,
        &mut sink,
    );
    let elapsed = t0.elapsed();
    println!(
        "checked {} elements / {} devices in {:.1}s ({:.0} elements/s)",
        report.element_count,
        report.device_count,
        elapsed.as_secs_f64(),
        report.element_count as f64 / elapsed.as_secs_f64()
    );
    println!(
        "candidate pairs {} — peak candidate buffer {} (tiled)",
        report.interact_stats.candidate_pairs, report.interact_stats.peak_candidate_buffer
    );
    for s in &report.stage_profile {
        println!(
            "  {:<12} {:>8.1} ms",
            s.name,
            s.duration.as_secs_f64() * 1e3
        );
    }

    assert!(
        report.element_count as u64 >= target,
        "mega chip fell short of the element target: {} < {target}",
        report.element_count
    );
    assert_eq!(
        sink.total(),
        0,
        "the clean mega array must check clean — the checker regressed"
    );
    assert!(
        report.interact_stats.peak_candidate_buffer < report.interact_stats.candidate_pairs,
        "tiled peak {} not bounded below total pairs {}",
        report.interact_stats.peak_candidate_buffer,
        report.interact_stats.candidate_pairs
    );
    println!("mega smoke OK");
}
