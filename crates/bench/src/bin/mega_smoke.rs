//! Release-mode mega-chip smoke: generate a library-scale clean array,
//! run the bounded-memory pipeline over it, and assert the verdict.
//!
//! ```text
//! cargo run -p diic-bench --bin mega_smoke --release -- [target_elements] [count|spill]
//! ```
//!
//! Two sink modes:
//!
//! * **count** (default) — counting sink, nothing violation-shaped is
//!   ever buffered; asserts the clean chip checks clean and the tiled
//!   candidate peak is bounded.
//! * **spill** — disables same-net suppression so the clean array
//!   produces O(interactions) report volume, then streams the full
//!   sorted report through a [`SpillingSink`] (budget
//!   `MEGA_SPILL_BUDGET` violations, default 65536) into a hashing
//!   writer; asserts the merge was genuinely multi-run. This is the
//!   mode whose peak RSS the `mega-smoke-1e7` CI step gates — a sorted
//!   multi-hundred-MB report with in-RAM report state bounded by one
//!   run plus the merge cursors.
//!
//! CI wraps this in `/usr/bin/time -v` and enforces a peak-RSS ceiling:
//! with candidate memory bounded by the widest tile and report memory
//! bounded by the spill budget, resident memory scales with the
//! instantiated view, not with the all-pairs list or the report. Exits
//! non-zero (panics) on any assertion.

use diic_bench::FnvWriter;
use diic_core::{check_with_sink, CheckOptions, CountingSink, SpillingSink, StageEngine};
use diic_tech::nmos::nmos_technology;
use std::time::Instant;

fn main() {
    let target: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("target_elements must be a number"))
        .unwrap_or(1_000_000);
    let mode = std::env::args().nth(2).unwrap_or_else(|| "count".into());

    let t0 = Instant::now();
    let chip = diic_gen::mega_chip(target);
    let layout = diic_cif::parse(&chip.cif).expect("generated chips always parse");
    println!(
        "generated + parsed {} cells in {:.1}s",
        chip.cell_count,
        t0.elapsed().as_secs_f64()
    );

    let tech = nmos_technology();
    let options = CheckOptions {
        erc: false,
        parallelism: 0,
        // The spill mode wants report volume; a rule-clean chip only
        // produces it with same-net suppression off (every intra-net
        // spacing pair reports).
        same_net_suppression: mode != "spill",
        ..CheckOptions::default() // tiled interactions are the default
    };
    let engine = StageEngine::diic_pipeline();

    let t0 = Instant::now();
    let (report, reported) = match mode.as_str() {
        "count" => {
            let mut sink = CountingSink::new();
            let report = check_with_sink(&engine, &layout, &tech, &options, &mut sink);
            (report, sink.total())
        }
        "spill" => {
            let budget: usize = std::env::var("MEGA_SPILL_BUDGET")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64 * 1024);
            let mut sink = SpillingSink::new(FnvWriter::new(), budget);
            let report = check_with_sink(&engine, &layout, &tech, &options, &mut sink);
            let (out, stats) = sink.finish().expect("hash writes cannot fail");
            let (hash, bytes) = out.digest();
            println!(
                "spilled {} violations over {} runs ({:.1} MB on disk), merged \
                 {:.1} MB of report (fnv {hash:016x})",
                stats.written,
                stats.runs,
                stats.spilled_bytes as f64 / 1e6,
                bytes as f64 / 1e6,
            );
            assert!(
                stats.runs > 1,
                "the spill budget must force a multi-run merge — got {} run(s)",
                stats.runs
            );
            assert!(
                stats.written > 0,
                "same-net suppression off must produce report volume"
            );
            (report, stats.written)
        }
        other => panic!("unknown sink mode {other:?} (use count or spill)"),
    };
    let elapsed = t0.elapsed();
    println!(
        "checked {} elements / {} devices in {:.1}s ({:.0} elements/s)",
        report.element_count,
        report.device_count,
        elapsed.as_secs_f64(),
        report.element_count as f64 / elapsed.as_secs_f64()
    );
    println!(
        "candidate pairs {} — peak candidate buffer {} (tiled)",
        report.interact_stats.candidate_pairs, report.interact_stats.peak_candidate_buffer
    );
    for s in &report.stage_profile {
        println!(
            "  {:<12} {:>8.1} ms",
            s.name,
            s.duration.as_secs_f64() * 1e3
        );
    }

    assert!(
        report.element_count as u64 >= target,
        "mega chip fell short of the element target: {} < {target}",
        report.element_count
    );
    if mode == "count" {
        assert_eq!(
            reported, 0,
            "the clean mega array must check clean — the checker regressed"
        );
    }
    assert!(
        report.interact_stats.peak_candidate_buffer < report.interact_stats.candidate_pairs,
        "tiled peak {} not bounded below total pairs {}",
        report.interact_stats.peak_candidate_buffer,
        report.interact_stats.candidate_pairs
    );
    // Self-reported peak RSS (VmHWM) — the same number CI's
    // `/usr/bin/time -v` gates on, available where that tool is not.
    let peak_kb = diic_bench::peak_rss_kb();
    if peak_kb > 0 {
        println!("peak RSS {:.0} MB (VmHWM)", peak_kb as f64 / 1e3);
    }
    println!("mega smoke OK ({mode})");
}
