//! The experiment harness: regenerates every figure-level result of the
//! paper as printed tables.
//!
//! ```text
//! cargo run -p diic-bench --bin experiments --release           # everything
//! cargo run -p diic-bench --bin experiments -- --quick          # small sizes
//! cargo run -p diic-bench --bin experiments -- e1 e9 --quick    # a subset
//! ```

use diic_bench::Scale;

/// A named experiment: label plus the closure that renders its table.
type Experiment = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = Scale { quick };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();

    let experiments: Vec<Experiment> = vec![
        ("e1", Box::new(move || diic_bench::e1_error_regions(scale))),
        ("e2", Box::new(diic_bench::e2_figure_pathologies)),
        ("e3", Box::new(diic_bench::e3_expand_shrink)),
        ("e4", Box::new(diic_bench::e4_width_spacing_pathologies)),
        ("e5", Box::new(diic_bench::e5_electrical_equivalence)),
        ("e6", Box::new(diic_bench::e6_device_dependent)),
        ("e7", Box::new(diic_bench::e7_contact_over_gate)),
        ("e8", Box::new(diic_bench::e8_accidental_transistors)),
        (
            "e9",
            Box::new(move || diic_bench::e9_pipeline_scaling(scale)),
        ),
        ("e10", Box::new(diic_bench::e10_skeletal_connectivity)),
        (
            "e11",
            Box::new(move || diic_bench::e11_interaction_matrix(scale)),
        ),
        (
            "e12",
            Box::new(move || diic_bench::e12_proximity_expand(scale)),
        ),
        ("e13", Box::new(diic_bench::e13_relational_rule)),
        ("e14", Box::new(diic_bench::e14_self_sufficiency)),
        ("e15", Box::new(diic_bench::e15_composition_rules)),
        (
            "e16",
            Box::new(move || diic_bench::e16_parallel_speedup(scale)),
        ),
        ("e17", Box::new(move || diic_bench::e17_incremental(scale))),
        ("e18", Box::new(move || diic_bench::e18_memory(scale))),
        ("e19", Box::new(move || diic_bench::e19_spill(scale))),
        ("e20", Box::new(move || diic_bench::e20_library(scale))),
        ("e21", Box::new(move || diic_bench::e21_service_load(scale))),
    ];

    println!("DIIC experiment harness — McGrath & Whitney, DAC 1980");
    println!("======================================================\n");
    for (name, f) in &experiments {
        if selected.is_empty() || selected.contains(name) {
            println!("{}", f());
        }
    }
}
