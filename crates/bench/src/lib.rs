//! # diic-bench — experiment harnesses reproducing the paper's figures
//!
//! The paper's evaluation is a set of figures illustrating checker
//! pathologies and mechanisms plus one quantitative claim (false:real
//! error ratios of 10:1 or higher). Each `eN` function regenerates one
//! artefact as a printable table; the `experiments` binary runs them all.
//! See `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded results.

use diic_core::{
    account, check_cif, check_with_engine, flat_check, CheckOptions, FlatOptions, InteractOptions,
    StageEngine,
};
use diic_gen::{generate, ChipSpec, ErrorKind};
use diic_geom::{Polygon, Rect, Region, SizingMode};
use diic_process::{exposure_spacing_check, ExposureModel};
use diic_tech::nmos::nmos_technology;
use std::fmt::Write as _;
use std::time::Instant;

/// Scale knob: `quick` shrinks array sizes for CI-speed runs.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Reduce workload sizes.
    pub quick: bool,
}

impl Scale {
    fn array(&self, full: (usize, usize)) -> (usize, usize) {
        if self.quick {
            (full.0.min(4), full.1.min(2))
        } else {
            full
        }
    }
}

/// E1 — Fig. 1 + the "10:1" claim: error-region accounting, DIIC vs flat.
pub fn e1_error_regions(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E1: Fig.1 error regions — DIIC vs flat mask-level checker"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>9} {:>6} {:>6} {:>9} {:>10}",
        "checker", "cells", "injected", "real", "false", "unchecked", "false:real"
    );
    let tech = nmos_technology();
    let sizes = if scale.quick {
        vec![(4, 2)]
    } else {
        vec![(4, 2), (6, 4), (10, 6)]
    };
    for (nx, ny) in sizes {
        let errors = vec![
            ErrorKind::NarrowWire,
            ErrorKind::CloseSpacing,
            ErrorKind::AccidentalTransistor,
            ErrorKind::ButtedBoxes,
            ErrorKind::PowerGroundShort,
            ErrorKind::BadGateOverhang,
            ErrorKind::ContactOverGate,
        ];
        let chip = generate(&ChipSpec::with_errors(nx, ny, errors, 91));
        let injected = chip.injected();

        let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        let diic = account(&report.violations, &injected, 800);
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>9} {:>6} {:>6} {:>9} {:>10.1}",
            "DIIC",
            nx * ny,
            diic.injected,
            diic.real_flagged,
            diic.false_errors,
            diic.unchecked,
            diic.false_to_real_ratio()
        );

        let layout = diic_cif::parse(&chip.cif).unwrap();
        let flat = flat_check(&layout, &tech, &FlatOptions::default());
        let fr = account(&flat, &injected, 800);
        let ratio = if fr.false_to_real_ratio().is_finite() {
            format!("{:.1}", fr.false_to_real_ratio())
        } else {
            "inf".to_string()
        };
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>9} {:>6} {:>6} {:>9} {:>10}",
            "flat",
            nx * ny,
            fr.injected,
            fr.real_flagged,
            fr.false_errors,
            fr.unchecked,
            ratio
        );
    }
    let _ = writeln!(
        out,
        "paper claim: flat false:real reaches 10:1 or higher; DIIC ~0"
    );
    out
}

/// E2 — Fig. 2 figure pathologies: legal figures, illegal union (and the
/// reverse), verdicts of figure-based vs union-based vs DIIC checking.
pub fn e2_figure_pathologies() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E2: Fig.2 figure-based checking pathologies (min width 750)"
    );
    const W: i64 = 750;
    // Case A: two individually legal boxes joined only through a 100x100
    // corner overlap — the composite conducts through an illegal neck.
    let a1 = Rect::new(0, 0, 2000, 1000);
    let a2 = Rect::new(1900, 900, 3900, 1900);
    // Case B: two individually too-narrow boxes whose union is legal.
    let b1 = Rect::new(0, 0, 2000, 400);
    let b2 = Rect::new(0, 400, 2000, 800);

    let fig_based = |rects: &[Rect]| -> usize {
        rects
            .iter()
            .filter(|r| diic_geom::width::check_rect_width(r, W).is_some())
            .count()
    };
    let union_based = |rects: &[Rect]| -> usize {
        let region = Region::from_rects(rects.iter().copied());
        diic_geom::width::shrink_expand_compare(&region, W).len()
    };
    let diic_verdict = |rects: &[Rect]| -> usize {
        // Element width checks plus the skeletal connection rule.
        let mut n = fig_based(rects);
        let sk: Vec<_> = rects
            .iter()
            .map(|r| diic_geom::skeleton::Skeleton::of_rect(r, W / 2))
            .collect();
        for i in 0..rects.len() {
            for j in (i + 1)..rects.len() {
                if rects[i].touches(&rects[j]) {
                    let connected = match (&sk[i], &sk[j]) {
                        (Some(a), Some(b)) => a.connected_to(b),
                        _ => false,
                    };
                    if !connected {
                        n += 1; // illegal connection
                    }
                }
            }
        }
        n
    };
    let _ = writeln!(
        out,
        "{:<46} {:>9} {:>11} {:>5}",
        "case", "fig-based", "union-based", "DIIC"
    );
    let _ = writeln!(
        out,
        "{:<46} {:>9} {:>11} {:>5}",
        "A: legal figures, illegal neck (corner join)",
        fig_based(&[a1, a2]),
        union_based(&[a1, a2]),
        diic_verdict(&[a1, a2])
    );
    let _ = writeln!(
        out,
        "{:<46} {:>9} {:>11} {:>5}",
        "B: narrow figures, legal-width union (halves)",
        fig_based(&[b1, b2]),
        union_based(&[b1, b2]),
        diic_verdict(&[b1, b2])
    );
    let _ = writeln!(
        out,
        "A: both geometric techniques miss the neck; skeletal connectivity flags it\n\
         B: figure-based false-flags; DIIC flags by design (Fig.15 self-sufficiency)"
    );
    out
}

/// E3 — Fig. 3: orthogonal vs Euclidean expand/shrink of a square.
pub fn e3_expand_shrink() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3: Fig.3 orthogonal vs Euclidean sizing of a 1000-unit square"
    );
    let r = Rect::new(0, 0, 1000, 1000);
    let region = Region::from_rect(r);
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>13} {:>12}",
        "d", "orth area", "eucl area", "eucl corner", "shrink area"
    );
    for d in [100i64, 250, 500] {
        let orth = diic_geom::size::orthogonal_expand_area_rect(&r, d);
        let eucl = diic_geom::size::euclidean_expand_area_rect(&r, d);
        let corner_loss = orth as f64 - eucl;
        let shrunk = diic_geom::size::shrink(&region, d).unwrap().area();
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14.0} {:>13.0} {:>12}",
            d, orth, eucl, corner_loss, shrunk
        );
    }
    let _ = writeln!(
        out,
        "both shrinks give square corners; expands differ by (4-π)d² per corner set"
    );
    out
}

/// E4 — Fig. 4: width & spacing pathologies of the traditional techniques.
pub fn e4_width_spacing_pathologies() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E4: Fig.4 pathologies (metal rules: width 750, spacing 750)"
    );
    // Width: a LEGAL 3000-unit square.
    let square = Region::from_rect(Rect::new(0, 0, 3000, 3000));
    let orth_sec = diic_geom::width::shrink_expand_compare(&square, 750).len();
    let eucl_sec = diic_geom::raster::euclidean_shrink_expand_compare(&square, 750, 10).len();
    let diic_width = diic_geom::width::check_polygon_width(
        &Polygon::from_rect(&Rect::new(0, 0, 3000, 3000)),
        750,
    )
    .len();
    let _ = writeln!(out, "width check of a LEGAL square:");
    let _ = writeln!(
        out,
        "  shrink-expand-compare (orthogonal): {orth_sec} errors"
    );
    let _ = writeln!(
        out,
        "  shrink-expand-compare (Euclidean):  {eucl_sec} errors (the four corners)"
    );
    let _ = writeln!(
        out,
        "  DIIC edge-pair width check:         {diic_width} errors"
    );
    // Spacing: corners at L2 = 778 (legal), L∞ = 550 (flagged by orthogonal).
    let a = Rect::new(0, 0, 1000, 750);
    let b = Rect::new(1550, 1300, 2550, 2050);
    let orth = diic_geom::spacing::check_rect_spacing(&a, &b, 750, SizingMode::Orthogonal);
    let eucl = diic_geom::spacing::check_rect_spacing(&a, &b, 750, SizingMode::Euclidean);
    let _ = writeln!(out, "corner-to-corner spacing (gap 550/550, L2 = 778):");
    let _ = writeln!(
        out,
        "  orthogonal expand-check-overlap: {}",
        if orth.is_some() {
            "FALSE ERROR"
        } else {
            "pass"
        }
    );
    let _ = writeln!(
        out,
        "  Euclidean distance (DIIC):       {}",
        if eucl.is_some() { "error" } else { "pass" }
    );
    out
}

/// E5 — Fig. 5: electrical equivalence and the resistor exception.
pub fn e5_electrical_equivalence() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E5: Fig.5 same-net suppression and the resistor exception"
    );
    let tech = nmos_technology();
    // (a) two same-net metal boxes 500 apart (rule 750).
    let cif_a = "L NM; 9N A; B 2000 750 1000 375; 9N A; B 2000 750 1000 1625; E";
    for (label, suppress) in [("DIIC (same-net suppressed)", true), ("no topology", false)] {
        let r = check_cif(
            cif_a,
            &tech,
            &CheckOptions {
                same_net_suppression: suppress,
                erc: false,
                ..Default::default()
            },
        )
        .unwrap();
        let _ = writeln!(
            out,
            "  (a) equivalent boxes 500 apart: {label}: {} errors",
            r.violations.len()
        );
    }
    // (b) a hairpin diffusion wire 375 from a resistor body, same net.
    let cif_b = "
        DS 6; 9 res; 9D RESISTOR_D; 9T A ND 0 -750; 9T B ND 0 750;
        L ND; B 500 2000 0 0; DF;
        C 6 T 0 0;
        L ND; 9N IO_RA; W 500 0 -750 0 -2500;
        L ND; 9N IO_RB; W 500 0 750 0 2500 875 2500 875 0;
        E";
    let r = check_cif(
        cif_b,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let _ = writeln!(
        out,
        "  (b) same-net hairpin 375 from resistor body: DIIC: {} error(s) (override keeps the check)",
        r.violations.len()
    );
    let _ = writeln!(
        out,
        "paper: (a) unnecessary check eliminated; (b) short across resistor still caught"
    );
    out
}

/// E6 — Fig. 6: device-dependent base/isolation rule in the bipolar tech.
pub fn e6_device_dependent() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E6: Fig.6 device-dependent rules (bipolar base vs isolation)"
    );
    let tech = diic_tech::bipolar::bipolar_technology();
    // Transistor base touching isolation: error.
    let npn = "
        DS 1; 9 t; 9D NPN; 9T B BB 0 0; 9T E BE 0 0; 9T C BB 250 250;
        L BB; B 2000 2000 0 0; L BE; B 500 500 0 0; DF;
        C 1 T 0 0;
        L BI; 9N GND; B 2000 2000 2000 0;
        E";
    let r1 = check_cif(
        npn,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let spacing_errors = r1
        .violations
        .iter()
        .filter(|v| matches!(v.kind, diic_core::ViolationKind::Spacing { .. }))
        .count();
    let _ = writeln!(
        out,
        "  NPN base touching isolation:        {spacing_errors} error(s) [expect 1]"
    );
    // Resistor tied to isolation: legal.
    let res = "
        DS 2; 9 r; 9D BASE_RESISTOR; 9T A BB 0 -750; 9T B BB 0 750;
        L BB; B 500 2000 0 0; DF;
        C 2 T 0 0;
        L BI; 9N GND; B 2000 2000 1250 0;
        E";
    let r2 = check_cif(
        res,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let _ = writeln!(
        out,
        "  base RESISTOR tied to isolation:    {} error(s) [expect 0 — legal ground tie]",
        r2.violations.len()
    );
    let _ = writeln!(out, "  (a mask-level checker must flag both or neither)");
    out
}

/// E7 — Fig. 7: contact over gate vs butting contact.
pub fn e7_contact_over_gate() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E7: Fig.7 contact-over-gate vs butting contact");
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        3,
        1,
        vec![ErrorKind::ContactOverGate],
        3,
    ));
    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let flat = flat_check(&layout, &tech, &FlatOptions::default());
    let diic_cog = report
        .violations
        .iter()
        .filter(|v| diic_core::category_of(v) == "contact-over-gate")
        .count();
    let flat_cog = flat
        .iter()
        .filter(|v| diic_core::category_of(v) == "contact-over-gate")
        .count();
    let _ = writeln!(
        out,
        "  chip: 1 bad transistor (contact on gate) + 1 legal butting contact"
    );
    let _ = writeln!(
        out,
        "  DIIC contact-over-gate reports: {diic_cog} [expect 1 — the bad transistor]"
    );
    let _ = writeln!(
        out,
        "  flat contact-over-gate reports: {flat_cog} [expect 2 — also flags the butting contact]"
    );
    out
}

/// E8 — Fig. 8: intentional vs accidental transistors.
pub fn e8_accidental_transistors() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E8: Fig.8 declared-device typing");
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        3,
        1,
        vec![ErrorKind::AccidentalTransistor, ErrorKind::BadGateOverhang],
        13,
    ));
    let injected = chip.injected();
    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let diic = account(&report.violations, &injected, 800);
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let flat = flat_check(&layout, &tech, &FlatOptions::default());
    let fr = account(&flat, &injected, 800);
    let _ = writeln!(
        out,
        "  injected: accidental poly/diff crossing + missing gate overlap"
    );
    let _ = writeln!(out, "  DIIC: {} / 2 caught", diic.real_flagged);
    let _ = writeln!(
        out,
        "  flat: {} / 2 caught ({} unchecked — assumed to be legal transistors)",
        fr.real_flagged, fr.unchecked
    );
    out
}

/// E9 — Figs. 9–10: pipeline stage costs and hierarchical vs flat scaling.
pub fn e9_pipeline_scaling(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E9: Fig.9/10 hierarchy: run time and check counts vs array size"
    );
    let tech = nmos_technology();
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>11} {:>11} {:>9} {:>12} {:>12}",
        "cells", "elements", "hier ms", "flatsrch ms", "cachehit", "defn checks", "flat checks"
    );
    let sizes = if scale.quick {
        vec![(2, 1), (4, 2)]
    } else {
        vec![(2, 1), (4, 2), (8, 4), (12, 8), (16, 12)]
    };
    for (nx, ny) in sizes {
        let chip = generate(&ChipSpec {
            demo_cells: false,
            ..ChipSpec::clean(nx, ny)
        });
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let t0 = Instant::now();
        let hier = diic_core::check(&layout, &tech, &CheckOptions::default());
        let t_hier = t0.elapsed();
        let t0 = Instant::now();
        let _flat_search = diic_core::check(
            &layout,
            &tech,
            &CheckOptions {
                hierarchical: false,
                ..Default::default()
            },
        );
        let t_flat = t0.elapsed();
        let (defn, flat_checks) = diic_core::element_checks::check_count_comparison(&layout);
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>11.2} {:>11.2} {:>9} {:>12} {:>12}",
            nx * ny,
            hier.element_count,
            t_hier.as_secs_f64() * 1e3,
            t_flat.as_secs_f64() * 1e3,
            hier.interact_stats.cache_hits,
            defn,
            flat_checks
        );
    }
    let _ = writeln!(
        out,
        "definition-level checks stay constant while flat-equivalent work grows linearly"
    );
    out
}

/// E10 — Fig. 11: skeletal connectivity truth table.
pub fn e10_skeletal_connectivity() -> String {
    use diic_geom::skeleton::Skeleton;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E10: Fig.11 skeletal connectivity (min width 500, h = 250)"
    );
    let base = Rect::new(0, 0, 2000, 500);
    let cases: Vec<(&str, Rect, bool)> = vec![
        ("full overlap", Rect::new(500, 0, 2500, 500), true),
        ("overlap = min width", Rect::new(1500, 0, 3500, 500), true),
        ("overlap < min width", Rect::new(1750, 0, 3750, 500), false),
        ("butted end-to-end", Rect::new(2000, 0, 4000, 500), false),
        ("enclosed", Rect::new(250, 0, 1000, 500), true),
        (
            "corner overlap only",
            Rect::new(1900, 400, 3900, 900),
            false,
        ),
        ("separated", Rect::new(3000, 0, 5000, 500), false),
    ];
    let sa = Skeleton::of_rect(&base, 250).unwrap();
    let _ = writeln!(
        out,
        "{:<24} {:>10} {:>11}",
        "configuration", "connected", "union legal"
    );
    for (name, other, expect) in cases {
        let sb = Skeleton::of_rect(&other, 250).unwrap();
        let connected = sa.connected_to(&sb);
        assert_eq!(connected, expect, "{name}");
        // The paper's theorem: connected => union is legal width.
        let union_ok = if connected {
            let union = Region::from_rects([base, other]);
            diic_geom::width::shrink_expand_compare(&union, 500).is_empty()
        } else {
            true // theorem says nothing
        };
        let _ = writeln!(
            out,
            "{:<24} {:>10} {:>11}",
            name,
            if connected { "yes" } else { "no" },
            if connected {
                if union_ok {
                    "yes"
                } else {
                    "VIOLATED"
                }
            } else {
                "n/a"
            }
        );
    }
    let _ = writeln!(
        out,
        "theorem (paper): legal widths + skeletal connection => legal-width union"
    );
    out
}

/// E11 — Fig. 12: the interaction matrix and its pruning counters.
pub fn e11_interaction_matrix(scale: Scale) -> String {
    let mut out = String::new();
    let tech = nmos_technology();
    let _ = writeln!(out, "E11: Fig.12 interaction matrix (NMOS)");
    let _ = writeln!(
        out,
        "{:<10} {:<10} {:>9} {:>9} {:>10}",
        "layer", "layer", "diff-net", "same-net", "unrelated"
    );
    for (a, b, rule) in tech.rules().entries() {
        let _ = writeln!(
            out,
            "{:<10} {:<10} {:>9} {:>9} {:>10}",
            tech.layer(a).name,
            tech.layer(b).name,
            rule.diff_net,
            rule.same_net.map(|v| v.to_string()).unwrap_or("-".into()),
            rule.unrelated_device
                .map(|v| v.to_string())
                .unwrap_or("-".into()),
        );
    }
    let n = tech.layers().len();
    let (with_rules, same_net_checked) = tech.rules().subcase_counts();
    let _ = writeln!(
        out,
        "{} layers => {} potential pairs; {} have rules; {} check same-net pairs",
        n,
        n * (n + 1) / 2,
        with_rules,
        same_net_checked
    );
    // Pruning counters on a generated chip.
    let (nx, ny) = scale.array((6, 4));
    let chip = generate(&ChipSpec::clean(nx, ny));
    let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
    let s = report.interact_stats;
    let _ = writeln!(
        out,
        "on a {}x{} array: {} candidate pairs -> {} no-rule, {} same-net, {} related, {} waived, {} distance checks",
        nx, ny, s.candidate_pairs, s.no_rule, s.same_net_suppressed, s.related_suppressed,
        s.override_waived, s.distance_checks
    );
    out
}

/// E12 — Fig. 13 + Eq. 1: Euclidean vs orthogonal vs proximity expand.
pub fn e12_proximity_expand(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E12: Fig.13 expansion flavours (square, d = 250, sigma = 125)"
    );
    let sq = Region::from_rect(Rect::new(0, 0, 1500, 1500));
    let res = if scale.quick { 20 } else { 10 };
    let c = diic_process::proximity::expand_comparison(&sq, 250, 125.0, res);
    let drawn = 1500.0f64 * 1500.0;
    let _ = writeln!(out, "{:<14} {:>12} {:>9}", "expand", "area", "vs drawn");
    for (name, area) in [
        ("orthogonal", c.orthogonal_area),
        ("euclidean", c.euclidean_area),
        ("proximity", c.proximity_area),
    ] {
        let _ = writeln!(
            out,
            "{:<14} {:>12.0} {:>8.1}%",
            name,
            area,
            100.0 * (area - drawn) / drawn
        );
    }
    let _ = writeln!(
        out,
        "ordering orth > eucl >= prox at corners, as drawn in Fig.13"
    );
    // Proximity: the gap between close bars blooms shut.
    let bars = Region::from_rects([Rect::new(0, 0, 1000, 3000), Rect::new(1150, 0, 2150, 3000)]);
    let model = ExposureModel::new(125.0, 0.5);
    let merged = exposure_spacing_check(&bars.rects()[..1], &bars.rects()[1..], &model, 0);
    let _ = writeln!(
        out,
        "two bars 150 apart (1.2 sigma): bridge exposure {:.2} vs critical {:.2} -> {}",
        merged.bridge_exposure,
        merged.critical,
        if merged.violation {
            "MERGE (proximity effect)"
        } else {
            "separate"
        }
    );
    out
}

/// E13 — Fig. 14: the relational endcap rule.
pub fn e13_relational_rule() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E13: Fig.14 relational rule — endcap retreat vs wire width"
    );
    let model = ExposureModel::new(125.0, 0.5);
    let _ = writeln!(
        out,
        "{:>8} {:>10} {:>18}",
        "width", "retreat", "overlap needed"
    );
    for w in [250i64, 375, 500, 750, 1000] {
        let retreat = diic_process::relational::endcap_retreat(w, &model);
        let needed = diic_process::relational::required_overlap(w, 0, &model, 125, 250.0);
        let _ = writeln!(out, "{:>8} {:>10.0} {:>18}", w, retreat, needed);
    }
    let _ = writeln!(
        out,
        "narrower poly retreats more => required overlap is a function of width"
    );
    out
}

/// E14 — Fig. 15: self-sufficiency of symbols.
pub fn e14_self_sufficiency() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E14: Fig.15 self-sufficiency");
    let tech = nmos_technology();
    // Butted half-width boxes across instances.
    let butted = "
        DS 1; 9 half; L NM; B 2000 375 1000 187; DF;
        C 1 T 0 0; C 1 T 0 375; E";
    let r1 = check_cif(
        butted,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    // Overlapped full-width boxes.
    let overlapped = "
        DS 2; 9 full; L NM; B 2000 750 1000 375; DF;
        C 2 T 0 0; C 2 T 1250 0; E";
    let r2 = check_cif(
        overlapped,
        &tech,
        &CheckOptions {
            erc: false,
            ..Default::default()
        },
    )
    .unwrap();
    let _ = writeln!(
        out,
        "  half-width boxes butted to full width: {} violation(s) [expect >0: width-in-definition]",
        r1.violations.len()
    );
    let _ = writeln!(
        out,
        "  full-width boxes overlapped:           {} violation(s) [expect 0 — preferred technique]",
        r2.violations.len()
    );
    out
}

/// E15 — the four non-geometric construction rules.
pub fn e15_composition_rules() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E15: non-geometric construction rules");
    let tech = nmos_technology();
    let cases = [
        (ErrorKind::PowerGroundShort, "power/ground short"),
        (ErrorKind::DepletionToGround, "depletion device to ground"),
        (ErrorKind::BusToRail, "bus to rail"),
    ];
    for (kind, name) in cases {
        let chip = generate(&ChipSpec::with_errors(3, 1, vec![kind], 29));
        let report = check_cif(&chip.cif, &tech, &CheckOptions::default()).unwrap();
        let erc = report
            .violations
            .iter()
            .filter(|v| matches!(v.kind, diic_core::ViolationKind::Erc { .. }))
            .count();
        let _ = writeln!(out, "  {name}: {erc} ERC report(s) [expect >=1]");
    }
    // Dangling net: a floating gate wire.
    let dangling = "L NP; 9N floats; W 500 0 0 4000 0; E";
    let r = check_cif(dangling, &tech, &CheckOptions::default()).unwrap();
    let _ = writeln!(
        out,
        "  dangling net (floating wire): {} ERC report(s) [expect 1]",
        r.violations.len()
    );
    let _ = writeln!(out, "  (the flat mask-level checker reports none of these)");
    out
}

/// E16 — stage engine: serial vs parallel paths. The interaction
/// search's candidate enumeration/evaluation and the flat baseline's
/// per-layer Boolean work are embarrassingly parallel; this prints
/// wall-clock speedups for both (from the engine's per-stage timings)
/// and verifies the reports stay byte-identical.
pub fn e16_parallel_speedup(scale: Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E16: parallel interaction stage — speedup over serial");
    let tech = nmos_technology();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always exercise at least two workers so the byte-identical claim is
    // tested even on single-core hosts (where no speedup is possible).
    let threads = cores.clamp(2, 8);
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>11} {:>11} {:>8} {:>10}",
        "cells", "pairs", "serial ms", "par ms", "speedup", "identical"
    );
    let sizes = if scale.quick {
        vec![(4, 2), (8, 4)]
    } else {
        vec![(8, 4), (12, 8), (16, 12)]
    };
    for (nx, ny) in sizes {
        let chip = generate(&ChipSpec {
            demo_cells: false,
            ..ChipSpec::clean(nx, ny)
        });
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let serial_opts = CheckOptions {
            erc: false,
            ..CheckOptions::default()
        };
        let par_opts = CheckOptions {
            parallelism: threads,
            ..serial_opts.clone()
        };
        let serial = diic_core::check(&layout, &tech, &serial_opts);
        let parallel = diic_core::check(&layout, &tech, &par_opts);
        // Compare the interaction stage itself, not the whole pipeline —
        // the other six stages are serial either way and would dilute
        // the ratio.
        let t_serial = serial.timings.interactions;
        let t_parallel = parallel.timings.interactions;
        let identical = serial.violations == parallel.violations
            && serial.interact_stats == parallel.interact_stats;
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>11.2} {:>11.2} {:>7.2}x {:>10}",
            nx * ny,
            serial.interact_stats.candidate_pairs,
            t_serial.as_secs_f64() * 1e3,
            t_parallel.as_secs_f64() * 1e3,
            t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9),
            if identical { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "({threads} workers on {cores} core(s); reports must stay byte-identical \
         across worker counts; speedup needs >1 core)"
    );

    // The connections + netgen stages, parallelised in the same
    // discipline (tile-sharded connection scan; netgen per-scope union
    // phase as symbolic draft rows). Timed from the engine's classic
    // stage buckets; identity covers the stage outputs end to end
    // (violations and the assembled net list).
    let _ = writeln!(out, "\nconnections + netgen stages:");
    let _ = writeln!(
        out,
        "{:>9} {:>11} {:>11} {:>11} {:>11} {:>8} {:>10}",
        "cells", "conn s ms", "conn p ms", "net s ms", "net p ms", "speedup", "identical"
    );
    let conn_sizes = if scale.quick {
        vec![(4, 2), (8, 4)]
    } else {
        vec![(8, 4), (12, 8), (16, 12)]
    };
    for (nx, ny) in conn_sizes {
        let chip = generate(&ChipSpec {
            demo_cells: false,
            ..ChipSpec::clean(nx, ny)
        });
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let serial_opts = CheckOptions {
            erc: false,
            ..CheckOptions::default()
        };
        let par_opts = CheckOptions {
            parallelism: threads,
            ..serial_opts.clone()
        };
        let serial = diic_core::check(&layout, &tech, &serial_opts);
        let parallel = diic_core::check(&layout, &tech, &par_opts);
        let (cs, cp) = (serial.timings.connections, parallel.timings.connections);
        let (ns, np) = (serial.timings.netlist, parallel.timings.netlist);
        let identical =
            serial.violations == parallel.violations && serial.netlist == parallel.netlist;
        let _ = writeln!(
            out,
            "{:>9} {:>11.2} {:>11.2} {:>11.2} {:>11.2} {:>7.2}x {:>10}",
            nx * ny,
            cs.as_secs_f64() * 1e3,
            cp.as_secs_f64() * 1e3,
            ns.as_secs_f64() * 1e3,
            np.as_secs_f64() * 1e3,
            (cs + ns).as_secs_f64() / (cp + np).as_secs_f64().max(1e-9),
            if identical { "yes" } else { "NO" }
        );
    }

    // The flat baseline's per-layer Boolean work, parallelised the same
    // way (per-layer width jobs, per-component spacing jobs). Timed
    // from the engine's stage profile — width + spacing only, since the
    // flatten/union front end (flat-union) is serial either way and
    // would dilute the ratio just like the other pipeline stages above.
    let _ = writeln!(out, "\nflat baseline — per-layer Boolean work:");
    let _ = writeln!(
        out,
        "{:>9} {:>11} {:>11} {:>8} {:>10}",
        "cells", "serial ms", "par ms", "speedup", "identical"
    );
    let flat_sizes = if scale.quick {
        vec![(4, 2), (8, 4)]
    } else {
        vec![(8, 4), (12, 8), (16, 12)]
    };
    let flat_engine = StageEngine::flat_baseline(FlatOptions::default());
    let boolean_work = |report: &diic_core::CheckReport| {
        report
            .stage_profile
            .iter()
            .filter(|s| s.name == "flat-width" || s.name == "flat-spacing")
            .map(|s| s.duration)
            .sum::<std::time::Duration>()
    };
    for (nx, ny) in flat_sizes {
        let chip = generate(&ChipSpec {
            demo_cells: false,
            ..ChipSpec::clean(nx, ny)
        });
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let tech = nmos_technology();
        let serial_opts = CheckOptions {
            erc: false,
            ..CheckOptions::default()
        };
        let par_opts = CheckOptions {
            parallelism: threads,
            ..serial_opts.clone()
        };
        let serial = check_with_engine(&flat_engine, &layout, &tech, &serial_opts);
        let parallel = check_with_engine(&flat_engine, &layout, &tech, &par_opts);
        let t_serial = boolean_work(&serial);
        let t_parallel = boolean_work(&parallel);
        let _ = writeln!(
            out,
            "{:>9} {:>11.2} {:>11.2} {:>7.2}x {:>10}",
            nx * ny,
            t_serial.as_secs_f64() * 1e3,
            t_parallel.as_secs_f64() * 1e3,
            t_serial.as_secs_f64() / t_parallel.as_secs_f64().max(1e-9),
            if serial.violations == parallel.violations {
                "yes"
            } else {
                "NO"
            }
        );
    }

    // The columnar batch kernels themselves: throughput of the
    // branch-free geometry sweeps the connection and interaction
    // stages now run over contiguous column slices. Pairs come from a
    // fixed neighbour window over the element order — the same
    // contiguous-run access pattern a grid tile presents.
    let _ = writeln!(out, "\nbatch geometry kernels over the columnar store:");
    let _ = writeln!(
        out,
        "{:>18} {:>11} {:>10} {:>9} {:>9}",
        "kernel", "pairs", "total ms", "ns/pair", "hits"
    );
    let (knx, kny) = if scale.quick { (8, 4) } else { (16, 12) };
    let kchip = generate(&ChipSpec {
        demo_cells: false,
        ..ChipSpec::clean(knx, kny)
    });
    let klayout = diic_cif::parse(&kchip.cif).unwrap();
    let (kbinding, _) = diic_core::LayerBinding::bind(&klayout, &tech);
    let kview = diic_core::instantiate_parallel(&klayout, &tech, &kbinding, 1);
    let cols = &kview.elements;
    let n = cols.len();
    const WINDOW: usize = 32;
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| (i + 1..(i + 1 + WINDOW).min(n)).map(move |j| (i, j)))
        .collect();
    let kernel_row =
        |out: &mut String, name: &str, total: std::time::Duration, m: usize, hits: usize| {
            let _ = writeln!(
                out,
                "{:>18} {:>11} {:>10.2} {:>9.1} {:>9}",
                name,
                m,
                total.as_secs_f64() * 1e3,
                total.as_nanos() as f64 / m.max(1) as f64,
                hits
            );
        };

    let t0 = Instant::now();
    let mut hits = 0usize;
    for &(i, j) in &pairs {
        hits += usize::from(diic_geom::batch::any_touch(
            cols.rects_of(i),
            cols.rects_of(j),
        ));
    }
    kernel_row(
        &mut out,
        "any_touch",
        t0.elapsed(),
        pairs.len(),
        std::hint::black_box(hits),
    );

    let t0 = Instant::now();
    let mut hits = 0usize;
    for &(i, j) in &pairs {
        hits += usize::from(diic_geom::batch::any_overlap(
            cols.skeleton_of(i),
            cols.skeleton_of(j),
        ));
    }
    kernel_row(
        &mut out,
        "any_overlap(skel)",
        t0.elapsed(),
        pairs.len(),
        std::hint::black_box(hits),
    );

    let t0 = Instant::now();
    let mut hits = 0usize;
    for &(i, j) in &pairs {
        hits += usize::from(
            diic_geom::batch::closest_approach(
                cols.rects_of(i),
                cols.rects_of(j),
                SizingMode::Euclidean,
            )
            .is_some(),
        );
    }
    kernel_row(
        &mut out,
        "closest_approach",
        t0.elapsed(),
        pairs.len(),
        std::hint::black_box(hits),
    );

    let t0 = Instant::now();
    let mut hits = 0usize;
    let mut candidates = 0usize;
    let mut scratch: Vec<u32> = Vec::with_capacity(WINDOW);
    let bboxes = cols.bboxes();
    for i in 0..n {
        let end = (i + 1 + WINDOW).min(n);
        let run = &bboxes[i + 1..end];
        candidates += run.len();
        scratch.clear();
        diic_geom::batch::touching_in_run(run, &bboxes[i], (i + 1) as u32, &mut scratch);
        hits += scratch.len();
    }
    kernel_row(
        &mut out,
        "touching_in_run",
        t0.elapsed(),
        candidates,
        std::hint::black_box(hits),
    );
    let _ = writeln!(
        out,
        "({n} elements, neighbour window {WINDOW}; rect/skeleton runs read straight\n\
         from the shared arenas, bbox runs from the contiguous bbox column)"
    );
    out
}

/// E17 — incremental re-check: edit-session speedup over full re-check,
/// across edit sizes, plus the `Region::components` grid-pass ablation.
/// Every row also verifies the patched report is byte-identical to the
/// from-scratch check.
pub fn e17_incremental(scale: Scale) -> String {
    use diic_core::incremental::{CheckSession, EditSet};
    let mut out = String::new();
    let (nx, ny) = if scale.quick { (6, 4) } else { (16, 12) };
    let _ = writeln!(
        out,
        "E17: incremental re-check vs full re-check ({nx}x{ny} array)"
    );
    let tech = nmos_technology();
    let chip = generate(&ChipSpec {
        demo_cells: false,
        ..ChipSpec::clean(nx, ny)
    });
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let options = CheckOptions::default();

    let t0 = Instant::now();
    let mut session = CheckSession::new(layout, &tech, &options);
    let t_open = t0.elapsed();
    let _ = writeln!(
        out,
        "session open (initial full check): {:.2} ms, {} elements",
        t_open.as_secs_f64() * 1e3,
        session.report().element_count
    );
    let _ = writeln!(
        out,
        "{:<26} {:>6} {:>8} {:>9} {:>9} {:>8} {:>10}",
        "edit", "dirty", "pairs", "incr ms", "full ms", "speedup", "identical"
    );

    // Edit workloads of growing blast radius, each repeated a few times
    // on the live session (best-of-reps to tame single-shot timer
    // noise). Each rep times the patched re-check against a
    // from-scratch check of the same edited layout and verifies byte
    // equality.
    let probe = session.layout().top_items().len();
    let inv = session
        .layout()
        .symbol_by_name("inv")
        .or_else(|| session.layout().symbol_by_cif_id(5))
        .expect("generated chips define the inverter");
    let nudged: Vec<diic_cif::Item> = session.layout().symbol(inv).items.clone();
    let reps = if scale.quick { 2 } else { 4 };
    // Warm the session (first applies pay one-time allocator churn),
    // leaving a probe wire at `probe` for the move rows.
    let mut add = EditSet::new();
    add.add_box(
        "NM",
        diic_geom::Rect::new(0, -20000, 2000, -19250),
        Some("IO_PROBE"),
    );
    session.apply(&add).expect("bench edits are valid");
    let rows: Vec<(&str, Vec<EditSet>)> = vec![
        ("add + remove one wire", {
            (0..reps)
                .flat_map(|_| {
                    let mut add = EditSet::new();
                    add.add_box(
                        "NM",
                        diic_geom::Rect::new(5000, -20000, 7000, -19250),
                        Some("IO_PROBE2"),
                    );
                    let mut rm = EditSet::new();
                    rm.remove(probe + 1);
                    [add, rm]
                })
                .collect()
        }),
        ("move one wire", {
            (0..reps)
                .map(|i| {
                    let mut mv = EditSet::new();
                    mv.translate(probe, if i % 2 == 0 { 2500 } else { -2500 }, 0);
                    mv
                })
                .collect()
        }),
        ("move one cell instance", {
            (0..reps)
                .map(|i| {
                    let mut mv = EditSet::new();
                    mv.translate(0, 0, if i % 2 == 0 { -250 } else { 250 });
                    mv
                })
                .collect()
        }),
        ("replace cell definition", {
            (0..reps)
                .map(|_| {
                    let mut rep = EditSet::new();
                    rep.replace_symbol(inv, nudged.clone());
                    rep
                })
                .collect()
        }),
    ];

    for (name, edit_reps) in rows {
        let mut best_incr = f64::INFINITY;
        let mut best_full = f64::INFINITY;
        let mut last_stats = Default::default();
        let mut identical = true;
        for edits in &edit_reps {
            let t0 = Instant::now();
            let stats = session.apply(edits).expect("bench edits are valid");
            best_incr = best_incr.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            let full = session.full_check();
            best_full = best_full.min(t0.elapsed().as_secs_f64());
            identical &= session.report().violations == full.violations
                && session.report().netlist == full.netlist;
            last_stats = stats;
        }
        let stats: diic_core::EditStats = last_stats;
        let _ = writeln!(
            out,
            "{:<26} {:>6} {:>8} {:>9.2} {:>9.2} {:>7.1}x {:>10}",
            name,
            stats.dirty_elements,
            stats.rechecked_pairs,
            best_incr * 1e3,
            best_full * 1e3,
            best_full / best_incr.max(1e-9),
            if identical { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "(small edits re-check a neighbourhood — net-neutral moves even reuse the\n\
         cached net list; moving a *connected* cell rips its nets apart, so half\n\
         the chip's nets re-resolve; a replaced definition invalidates every\n\
         instance and falls back to a full rebuild)"
    );

    // Ablation: Region::components — the grid+union-find pass vs the
    // quadratic all-pairs scan it replaced, on the chip's flattened
    // metal layer.
    let flat_layers = diic_core::FlatLayers::build(&diic_cif::parse(&chip.cif).unwrap(), &tech);
    let metal = tech.layer_by_cif("NM").unwrap();
    let region = flat_layers.get(metal).expect("metal is drawn");
    let t0 = Instant::now();
    let comps = region.components();
    let t_grid = t0.elapsed();
    let t0 = Instant::now();
    let slow = region.components_count_pairwise();
    let t_pairs = t0.elapsed();
    assert_eq!(comps.len(), slow, "ablation reference disagrees");
    let _ = writeln!(
        out,
        "components ablation (metal union, {} rects -> {} components): \
         grid {:.2} ms vs pairwise {:.2} ms ({:.1}x)",
        region.rect_count(),
        comps.len(),
        t_grid.as_secs_f64() * 1e3,
        t_pairs.as_secs_f64() * 1e3,
        t_pairs.as_secs_f64() / t_grid.as_secs_f64().max(1e-9)
    );
    out
}

/// E18 — bounded-memory pipeline: the tiled streaming interaction
/// stage's candidate-buffer peak vs the buffered baseline's, at
/// `mega_chip` scale, with byte-identity and throughput. The buffered
/// run holds the whole pair list; the tiled run's peak must be bounded
/// by the widest tile — the number that makes million-element chips
/// checkable in O(tile) candidate memory.
pub fn e18_memory(scale: Scale) -> String {
    use diic_core::{check_with_sink, CountingSink};
    let mut out = String::new();
    let targets: Vec<u64> = if scale.quick {
        vec![2_000, 20_000]
    } else {
        vec![20_000, 200_000, 1_000_000]
    };
    let _ = writeln!(
        out,
        "E18: bounded-memory tiled interactions — candidate buffer peak"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>11} {:>12} {:>12} {:>10} {:>10}",
        "elements", "cells", "pairs", "buffered pk", "tiled pk", "int ms", "identical"
    );
    let tech = nmos_technology();
    let mut intern_rows: Vec<String> = Vec::new();
    let mut store_rows: Vec<String> = Vec::new();
    for target in targets {
        let chip = diic_gen::mega_chip(target);
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let buffered_opts = CheckOptions {
            erc: false,
            tiled_interactions: false,
            parallelism: 0,
            ..CheckOptions::default()
        };
        let tiled_opts = CheckOptions {
            tiled_interactions: true,
            ..buffered_opts.clone()
        };
        let buffered = diic_core::check(&layout, &tech, &buffered_opts);
        // The tiled leg also streams its (empty — the chip is clean)
        // report through a counting sink: the whole run then buffers
        // nothing violation-shaped at all.
        let mut counting = CountingSink::new();
        let tiled = check_with_sink(
            &StageEngine::diic_pipeline(),
            &layout,
            &tech,
            &tiled_opts,
            &mut counting,
        );
        let identical = counting.total() == buffered.violations.len()
            && tiled.interact_stats.candidate_pairs == buffered.interact_stats.candidate_pairs
            && tiled.interact_stats.distance_checks == buffered.interact_stats.distance_checks;
        let _ = writeln!(
            out,
            "{:>9} {:>9} {:>11} {:>12} {:>12} {:>10.1} {:>10}",
            tiled.element_count,
            chip.cell_count,
            tiled.interact_stats.candidate_pairs,
            buffered.interact_stats.peak_candidate_buffer,
            tiled.interact_stats.peak_candidate_buffer,
            tiled.timings.interactions.as_secs_f64() * 1e3,
            if identical { "yes" } else { "NO" }
        );

        // The interned-view delta: what the ChipView's string floor
        // costs with one interner entry per distinct string + a u32
        // handle per reference, against what the same strings cost as
        // the per-element `String` copies the view used to hold.
        let (binding, _) = diic_core::LayerBinding::bind(&layout, &tech);
        // instantiate_parallel takes a literal worker count (no 0 =
        // auto resolution — that is CheckOptions' convention).
        let view = diic_core::instantiate_parallel(
            &layout,
            &tech,
            &binding,
            diic_core::effective_parallelism(0),
        );
        let handle_refs = view.elements.len() * 2 + view.devices.len() * 2;
        let interned = view.strings.heap_bytes() + handle_refs * 4;
        let copies: usize = view
            .elements
            .iter()
            .map(|e| view.str(e.path()).len() + view.str(e.net_key()).len() + 2 * 24)
            .sum::<usize>()
            + view
                .devices
                .iter()
                .map(|d| view.str(d.path).len() + view.str(d.device_type).len() + 2 * 24)
                .sum::<usize>();
        intern_rows.push(format!(
            "  view of {:>9} elements: {:>8} distinct strings, {:>6.1} MB interned vs {:>6.1} MB \
             as owned copies ({:.1}x)",
            view.elements.len(),
            view.strings.len(),
            interned as f64 / 1e6,
            copies as f64 / 1e6,
            copies as f64 / (interned as f64).max(1.0),
        ));

        // The columnar-store delta: bytes per element as struct-of-
        // arrays columns + shared arenas, against what the same data
        // costs as the boxed `ChipElement` records the view used to
        // hold (per-record struct incl. Vec/Option headers + its own
        // rect and skeleton heap allocations).
        use std::mem::size_of;
        let n = view.elements.len();
        let columnar = view.elements.heap_bytes();
        let boxed: usize = n * size_of::<diic_core::ChipElement>()
            + view
                .elements
                .iter()
                .map(|e| (e.rects().len() + e.skeleton().len()) * size_of::<Rect>())
                .sum::<usize>();
        let (arena_rects, arena_skel) = view.elements.arena_rects();
        store_rows.push(format!(
            "  store of {:>9} elements: boxed {:>6.1} B/elem vs columnar {:>6.1} B/elem \
             ({:.2}x; arenas {arena_rects} rect + {arena_skel} skeleton)",
            n,
            boxed as f64 / n.max(1) as f64,
            columnar as f64 / n.max(1) as f64,
            boxed as f64 / (columnar as f64).max(1.0),
        ));
    }
    let _ = writeln!(
        out,
        "(buffered peak = the whole materialised pair list; tiled peak = the widest\n\
         tile — the hierarchical search's widest scope/scope-pair cache row — which\n\
         stays flat as the array grows while total pairs grow with the chip)"
    );
    let _ = writeln!(
        out,
        "interned ChipView strings (path / net key / device type):"
    );
    for row in intern_rows {
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(
        out,
        "(owned copies = 24-byte String headers + per-element heap duplicates, the\n\
         pre-interning view floor; interned = one entry per distinct string + 4-byte\n\
         handles — the delta the tightened mega-smoke RSS ceiling banks on)"
    );
    let _ = writeln!(
        out,
        "columnar element store (struct-of-arrays vs boxed records):"
    );
    for row in store_rows {
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(
        out,
        "(boxed = one ChipElement record per element — struct incl. Vec/Option\n\
         headers plus its own rect/skeleton allocations; columnar = fixed-width\n\
         columns + two shared (offset,len)-addressed arenas. The per-element delta\n\
         is what ratchets the mega-smoke RSS ceiling below the PR 5 baseline)"
    );
    out
}

/// Peak resident set size (`VmHWM` from `/proc/self/status`) in
/// kilobytes; `0` where the proc interface is unavailable.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        std::fs::read_to_string("/proc/self/status")
            .ok()
            .and_then(|s| {
                s.lines().find_map(|line| {
                    line.strip_prefix("VmHWM:")
                        .and_then(|rest| rest.trim().strip_suffix("kB"))
                        .and_then(|n| n.trim().parse().ok())
                })
            })
            .unwrap_or(0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

/// Resets the kernel's peak-RSS watermark to the current RSS (writes
/// `5` to `/proc/self/clear_refs`) so successive [`peak_rss_kb`] reads
/// bracket one phase each instead of accumulating across the process.
/// Returns `false` where unsupported; measurements then cover the whole
/// process lifetime, which still upper-bounds each phase.
pub fn reset_peak_rss() -> bool {
    #[cfg(target_os = "linux")]
    {
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

/// An [`std::io::Write`] that hashes (FNV-1a, 64-bit) and counts every
/// byte — byte-identity between two streamed reports without holding
/// either in memory: equal `(hash, bytes)` digests mean equal streams.
#[derive(Debug, Default)]
pub struct FnvWriter {
    hash: u64,
    bytes: u64,
}

impl FnvWriter {
    /// An empty-stream digest.
    pub fn new() -> Self {
        FnvWriter {
            hash: 0xcbf2_9ce4_8422_2325,
            bytes: 0,
        }
    }

    /// `(hash, byte count)` of everything written so far.
    pub fn digest(&self) -> (u64, u64) {
        (self.hash, self.bytes)
    }
}

impl std::io::Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// E19 — the spilled report path: peak RSS and wall-clock, buffered
/// canonical report vs [`diic_core::SpillingSink`], by element count. Same-net
/// suppression is disabled so the rule-clean array actually produces
/// report volume (every intra-net spacing pair reports —
/// O(interactions) violations, the regime the spill path exists for).
/// Both legs stream their final bytes through an [`FnvWriter`], so
/// byte-identity is checked without a second in-memory copy.
pub fn e19_spill(scale: Scale) -> String {
    use diic_core::{canonical_sort, check_with_sink, SpillingSink};
    use std::io::Write as _;
    let mut out = String::new();
    // The budget is deliberately far below the violation volume so the
    // merge is genuinely k-way (quick: a few hundred violations per
    // run; full: 64k — about the chunk a production caller would pick).
    let (targets, budget): (Vec<u64>, usize) = if scale.quick {
        (vec![2_000, 20_000], 256)
    } else {
        (vec![20_000, 200_000, 1_000_000], 64 * 1024)
    };
    let _ = writeln!(
        out,
        "E19: spilled report path — RSS and wall-clock, buffered vs spilling sink"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>6} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}",
        "elements",
        "violations",
        "runs",
        "spill MB",
        "buf ms",
        "spill ms",
        "buf RSSMB",
        "spill RSSMB",
        "identical"
    );
    let tech = nmos_technology();
    let engine = StageEngine::diic_pipeline();
    for target in targets {
        let chip = diic_gen::mega_chip(target);
        let layout = diic_cif::parse(&chip.cif).unwrap();
        let options = CheckOptions {
            erc: false,
            parallelism: 0,
            same_net_suppression: false,
            ..CheckOptions::default()
        };

        reset_peak_rss();
        let t0 = Instant::now();
        let mut buffered = check_with_engine(&engine, &layout, &tech, &options);
        canonical_sort(&mut buffered.violations);
        let mut want = FnvWriter::new();
        for v in &buffered.violations {
            let _ = writeln!(want, "{v:?}");
        }
        let t_buf = t0.elapsed();
        let rss_buf = peak_rss_kb();

        reset_peak_rss();
        let t0 = Instant::now();
        let mut sink = SpillingSink::new(FnvWriter::new(), budget);
        check_with_sink(&engine, &layout, &tech, &options, &mut sink);
        let (got, stats) = sink.finish().expect("hash writes cannot fail");
        let t_spill = t0.elapsed();
        let rss_spill = peak_rss_kb();

        let identical = got.digest() == want.digest() && stats.written == buffered.violations.len();
        let _ = writeln!(
            out,
            "{:>9} {:>10} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>10.1} {:>10}",
            buffered.element_count,
            stats.written,
            stats.runs,
            stats.spilled_bytes as f64 / 1e6,
            t_buf.as_secs_f64() * 1e3,
            t_spill.as_secs_f64() * 1e3,
            rss_buf as f64 / 1e3,
            rss_spill as f64 / 1e3,
            if identical { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "(buffered = whole report sorted in RAM; spilling = sorted {budget}-violation\n\
         runs on disk, k-way merged to the writer at finish — the report's RAM\n\
         footprint is one run plus one merge cursor per run, whatever the chip\n\
         size. RSS is VmHWM bracketed per leg via /proc/self/clear_refs)"
    );
    out
}

/// E20 — library mode: cells/second over a generated variant library,
/// a loop of standalone `check()` calls against `check_library`'s
/// shared content-keyed caches, serial and wide. Every batch leg
/// streams its per-cell violations (input order) through an
/// [`FnvWriter`], so the "identical" column is a byte-level comparison
/// against the standalone loop, not a count.
pub fn e20_library(scale: Scale) -> String {
    use diic_core::{check, check_library_buffered, LibraryOptions, LibraryReport};
    use std::io::Write as _;

    let mut out = String::new();
    let cells = if scale.quick { 60 } else { 1000 };
    let lib = diic_gen::cell_library_with(&diic_gen::LibrarySpec {
        shared_fraction: 0.5,
        error_rate: 0.1,
        ..diic_gen::LibrarySpec::new(cells, 20)
    });
    let layouts: Vec<diic_cif::Layout> = lib
        .cells
        .iter()
        .map(|c| diic_cif::parse(&c.cif).unwrap())
        .collect();
    let tech = nmos_technology();
    let options = LibraryOptions::default();
    let _ = writeln!(
        out,
        "E20: library mode — {} cells ({} with shared subcell content, {} faulted)",
        cells, lib.shared_cells, lib.faulted_cells
    );
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>9} {:>9} {:>7} {:>10} {:>10}",
        "mode", "ms", "cells/s", "bytes/cell", "hit %", "compact", "identical"
    );

    // Baseline: a loop of standalone checks, one cold interner and one
    // run-local candidate cache per cell.
    reset_peak_rss();
    let t0 = Instant::now();
    let mut want = FnvWriter::new();
    for layout in &layouts {
        let report = check(layout, &tech, &options.cell);
        for v in &report.violations {
            let _ = writeln!(want, "{v:?}");
        }
    }
    let t_loop = t0.elapsed();
    let rss_loop = peak_rss_kb();
    let _ = writeln!(
        out,
        "{:<22} {:>8.1} {:>9.0} {:>9.0}K {:>7} {:>10} {:>10}",
        "standalone loop",
        t_loop.as_secs_f64() * 1e3,
        cells as f64 / t_loop.as_secs_f64(),
        rss_loop as f64 / cells as f64,
        "-",
        "-",
        "(baseline)"
    );

    let mut batch_row = |label: &str, opts: &LibraryOptions| -> (std::time::Duration, bool) {
        reset_peak_rss();
        let t0 = Instant::now();
        let batch: LibraryReport<_> = check_library_buffered(&layouts, &tech, opts);
        let elapsed = t0.elapsed();
        let rss = peak_rss_kb();
        let mut got = FnvWriter::new();
        for report in &batch.reports {
            for v in &report.violations {
                let _ = writeln!(got, "{v:?}");
            }
        }
        let identical = got.digest() == want.digest();
        let (h, m) = (
            batch.stats.shared_cache_hits,
            batch.stats.shared_cache_misses,
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8.1} {:>9.0} {:>9.0}K {:>6.1}% {:>10} {:>10}",
            label,
            elapsed.as_secs_f64() * 1e3,
            cells as f64 / elapsed.as_secs_f64(),
            rss as f64 / cells as f64,
            100.0 * h as f64 / (h + m).max(1) as f64,
            batch.stats.interner_compactions,
            if identical { "yes" } else { "NO" }
        );
        (elapsed, identical)
    };

    let (t_serial, id_serial) = batch_row(
        "batch shared, serial",
        &LibraryOptions {
            parallelism: 1,
            ..options.clone()
        },
    );
    let (t_wide, id_wide) = batch_row("batch shared, wide", &options);
    let (_, id_compact) = batch_row(
        "batch, tight interner",
        &LibraryOptions {
            interner_budget_bytes: 0,
            interner_keep_epochs: 1,
            ..options.clone()
        },
    );

    let _ = writeln!(
        out,
        "speedup vs standalone loop: serial ×{:.2}, wide ×{:.2}  (identical reports: {})",
        t_loop.as_secs_f64() / t_serial.as_secs_f64(),
        t_loop.as_secs_f64() / t_wide.as_secs_f64(),
        if id_serial && id_wide && id_compact {
            "all"
        } else {
            "NO"
        }
    );
    let _ = writeln!(
        out,
        "(shared caches: BoundTechnology constants + content-keyed candidate fills\n\
         + per-worker session interners with epoch compaction; hit % is the\n\
         cross-cell fill cache; bytes/cell is peak RSS over the leg / cells)"
    );
    out
}

/// E21 — check-as-a-service load: edit latency and session density.
///
/// Drives the `diic-api` router **in-process** (the tower `oneshot`
/// idiom — no sockets, so the numbers are the service's own cost, not
/// the kernel's): opens a pool of sessions over generated inverter
/// arrays, then hammers `POST /sessions/{id}/edits` from several
/// threads with net-neutral edit batches (a move, or an add
/// immediately un-done by a remove — the session ends each request at
/// its original item count, so concurrent writers never invalidate
/// each other's indices). Reports p50/p99 edit latency per thread
/// count, end-of-run `GET /report` latency, and the pool's
/// sessions-per-GB from the registry's own memory accounting.
pub fn e21_service_load(scale: Scale) -> String {
    use axum::{Method, Request, StatusCode};
    use diic_api::{router, App, RegistryConfig};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let mut out = String::new();
    let (nx, ny) = scale.array((12, 6));
    let sessions = if scale.quick { 6 } else { 24 };
    let edits_per_thread = if scale.quick { 40 } else { 250 };

    let app = router(App::new(RegistryConfig {
        max_sessions: sessions * 2,
        ..RegistryConfig::default()
    }));
    let app = Arc::new(app);

    // Open the pool.
    let chip = generate(&ChipSpec::clean(nx, ny));
    let open_body = format!(
        r#"{{"cif": {}, "options": {{"erc": false}}}}"#,
        serde_json::to_string(&serde_json::Value::from(chip.cif.as_str()))
    );
    let t0 = Instant::now();
    let mut ids = Vec::new();
    for _ in 0..sessions {
        let resp =
            app.oneshot(Request::new(Method::Post, "/sessions").with_body(open_body.clone()));
        assert_eq!(resp.status, StatusCode::CREATED, "open failed");
        let body = serde_json::from_str(std::str::from_utf8(&resp.into_bytes().unwrap()).unwrap())
            .unwrap();
        ids.push(body.get("id").and_then(serde_json::Value::as_i64).unwrap() as u64);
    }
    let t_open = t0.elapsed();
    let items = diic_cif::parse(&chip.cif).unwrap().top_items().len();

    let _ = writeln!(
        out,
        "E21: service load — {sessions} sessions of {nx}×{ny} inverters \
         ({items} top items each), open {:.1} ms/session",
        t_open.as_secs_f64() * 1e3 / sessions as f64
    );
    let _ = writeln!(
        out,
        "{:<26} {:>8} {:>9} {:>9} {:>9}",
        "edit mix", "threads", "ops/s", "p50 ms", "p99 ms"
    );

    let percentile = |sorted: &[Duration], q: f64| -> f64 {
        let i = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[i].as_secs_f64() * 1e3
    };

    for threads in [1usize, 4] {
        let counter = AtomicUsize::new(0);
        let t0 = Instant::now();
        let lats: Vec<Vec<Duration>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let app = Arc::clone(&app);
                    let ids = &ids;
                    let counter = &counter;
                    s.spawn(move || {
                        let mut lats = Vec::with_capacity(edits_per_thread);
                        for _ in 0..edits_per_thread {
                            let k = counter.fetch_add(1, Ordering::Relaxed);
                            let id = ids[k % ids.len()];
                            // Alternate a translate of an existing item
                            // with a net-neutral add+remove pair.
                            let body = if k.is_multiple_of(2) {
                                let dx = if (k / 2).is_multiple_of(2) { 40 } else { -40 };
                                format!(
                                    r#"{{"edits": [{{"op": "move", "index": {}, "by": [{dx}, 0]}}]}}"#,
                                    k % items
                                )
                            } else {
                                format!(
                                    r#"{{"edits": [
                                        {{"op": "add_element", "layer": "NM",
                                          "shape": {{"box": [-9000, {0}, -7000, {1}]}}}},
                                        {{"op": "remove", "index": {items}}}]}}"#,
                                    k * 3000,
                                    k * 3000 + 750
                                )
                            };
                            let t = Instant::now();
                            let resp = app.oneshot(
                                Request::new(Method::Post, &format!("/sessions/{id}/edits"))
                                    .with_body(body),
                            );
                            lats.push(t.elapsed());
                            assert_eq!(resp.status, StatusCode::OK, "edit failed");
                        }
                        lats
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = t0.elapsed();
        let mut all: Vec<Duration> = lats.into_iter().flatten().collect();
        all.sort_unstable();
        let _ = writeln!(
            out,
            "{:<26} {:>8} {:>9.0} {:>9.2} {:>9.2}",
            "move / add+remove",
            threads,
            all.len() as f64 / wall.as_secs_f64(),
            percentile(&all, 0.50),
            percentile(&all, 0.99),
        );
    }

    // Full-report streaming latency over one session.
    let t0 = Instant::now();
    let resp = app.oneshot(Request::new(
        Method::Get,
        &format!("/sessions/{}/report", ids[0]),
    ));
    assert_eq!(resp.status, StatusCode::OK);
    let report_bytes = resp.into_bytes().unwrap().len();
    let t_report = t0.elapsed();

    // Session density from the registry's own accounting.
    let resp = app.oneshot(Request::new(Method::Get, "/stats"));
    let stats =
        serde_json::from_str(std::str::from_utf8(&resp.into_bytes().unwrap()).unwrap()).unwrap();
    let memory_bytes = stats
        .get("memory_bytes")
        .and_then(serde_json::Value::as_i64)
        .unwrap() as f64;
    let per_session = memory_bytes / sessions as f64;
    let _ = writeln!(
        out,
        "GET /report: {report_bytes} bytes in {:.1} ms; pool {:.1} MiB \
         ({:.0} KiB/session, {:.0} sessions/GB)",
        t_report.as_secs_f64() * 1e3,
        memory_bytes / (1 << 20) as f64,
        per_session / 1024.0,
        (1u64 << 30) as f64 / per_session
    );
    out
}

/// Runs every experiment, returning the combined report.
pub fn run_all(scale: Scale) -> String {
    let parts = vec![
        e1_error_regions(scale),
        e2_figure_pathologies(),
        e3_expand_shrink(),
        e4_width_spacing_pathologies(),
        e5_electrical_equivalence(),
        e6_device_dependent(),
        e7_contact_over_gate(),
        e8_accidental_transistors(),
        e9_pipeline_scaling(scale),
        e10_skeletal_connectivity(),
        e11_interaction_matrix(scale),
        e12_proximity_expand(scale),
        e13_relational_rule(),
        e14_self_sufficiency(),
        e15_composition_rules(),
        e16_parallel_speedup(scale),
        e17_incremental(scale),
        e18_memory(scale),
        e19_spill(scale),
        e20_library(scale),
        e21_service_load(scale),
    ];
    parts.join("\n")
}

/// Ablation helper for benches: run the interaction stage with given options
/// on a generated clean chip; returns violation count.
pub fn interact_violations(nx: usize, ny: usize, options: InteractOptions) -> usize {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::clean(nx, ny));
    let report = check_cif(
        &chip.cif,
        &tech,
        &CheckOptions {
            same_net_suppression: options.same_net_suppression,
            metric: options.metric,
            hierarchical: options.hierarchical,
            parallelism: options.parallelism,
            erc: false,
            ..CheckOptions::default()
        },
    )
    .unwrap();
    report.violations.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Scale = Scale { quick: true };

    #[test]
    fn e1_shows_flat_worse_than_diic() {
        let t = e1_error_regions(QUICK);
        assert!(t.contains("DIIC"), "{t}");
        assert!(t.contains("flat"));
    }

    #[test]
    fn e2_to_e15_all_run() {
        for (i, s) in [
            e2_figure_pathologies(),
            e3_expand_shrink(),
            e4_width_spacing_pathologies(),
            e5_electrical_equivalence(),
            e6_device_dependent(),
            e7_contact_over_gate(),
            e8_accidental_transistors(),
            e9_pipeline_scaling(QUICK),
            e10_skeletal_connectivity(),
            e11_interaction_matrix(QUICK),
            e12_proximity_expand(QUICK),
            e13_relational_rule(),
            e14_self_sufficiency(),
            e15_composition_rules(),
            e16_parallel_speedup(QUICK),
        ]
        .iter()
        .enumerate()
        {
            assert!(!s.is_empty(), "experiment {} empty", i + 2);
        }
    }

    #[test]
    fn e4_verdicts() {
        let t = e4_width_spacing_pathologies();
        assert!(t.contains("(orthogonal): 0 errors"), "{t}");
        assert!(t.contains("(Euclidean):  4 errors"), "{t}");
        assert!(t.contains("FALSE ERROR"), "{t}");
    }

    #[test]
    fn e5_verdicts() {
        let t = e5_electrical_equivalence();
        assert!(t.contains("DIIC (same-net suppressed): 0 errors"), "{t}");
        assert!(t.contains("no topology: 1 errors"), "{t}");
        assert!(t.contains("1 error(s) (override keeps the check)"), "{t}");
    }

    #[test]
    fn e6_verdicts() {
        let t = e6_device_dependent();
        assert!(t.contains("1 error(s) [expect 1]"), "{t}");
        assert!(t.contains("0 error(s) [expect 0"), "{t}");
    }

    #[test]
    fn e7_verdicts() {
        let t = e7_contact_over_gate();
        assert!(t.contains("DIIC contact-over-gate reports: 1"), "{t}");
        assert!(t.contains("flat contact-over-gate reports: 2"), "{t}");
    }

    #[test]
    fn e14_verdicts() {
        let t = e14_self_sufficiency();
        assert!(t.contains("0 violation(s) [expect 0"), "{t}");
    }

    #[test]
    fn e16_includes_flat_rows_and_identity() {
        let t = e16_parallel_speedup(QUICK);
        assert!(t.contains("flat baseline"), "{t}");
        assert!(t.contains("yes"), "{t}");
        assert!(!t.contains(" NO"), "a parallel run diverged: {t}");
    }

    #[test]
    fn e18_tiled_peak_is_bounded_and_identical() {
        let t = e18_memory(QUICK);
        assert!(t.contains("yes"), "{t}");
        assert!(!t.contains(" NO"), "a tiled run diverged: {t}");
        assert!(t.contains("vs columnar"), "missing store rows: {t}");
        // The tiled peak must be strictly below the buffered peak on
        // every row (the buffered peak is the total pair count).
        for line in t
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
        {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let buffered: u64 = cols[3].parse().unwrap();
            let tiled: u64 = cols[4].parse().unwrap();
            assert!(
                tiled < buffered,
                "tiled peak {tiled} not below buffered {buffered}: {line}"
            );
        }
    }

    #[test]
    fn e19_spilled_report_is_identical_and_multi_run() {
        let t = e19_spill(QUICK);
        assert!(!t.contains(" NO"), "a spilled report diverged: {t}");
        // Every row must have merged more than one run (the budget is
        // far below the same-net violation volume) and verified
        // byte-identity against the buffered canonical report.
        for line in t
            .lines()
            .filter(|l| l.trim_start().starts_with(char::is_numeric))
        {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let runs: u64 = cols[2].parse().unwrap();
            assert!(runs > 1, "expected a multi-run merge: {line}");
            assert_eq!(*cols.last().unwrap(), "yes", "{line}");
        }
    }

    #[test]
    fn e20_batch_reports_identical_to_standalone() {
        let t = e20_library(QUICK);
        assert!(
            t.contains("identical reports: all"),
            "a batch leg diverged from the standalone loop: {t}"
        );
        for label in [
            "standalone loop",
            "batch shared, serial",
            "batch shared, wide",
        ] {
            assert!(t.contains(label), "missing row {label:?}: {t}");
        }
    }
}
