//! Fig. 13 bench: the exposure-model spacing predicate vs the plain
//! geometric distance predicate ("although still slower than the
//! expand-check-overlap technique, is more correct").

use criterion::{criterion_group, criterion_main, Criterion};
use diic_geom::spacing::check_rect_spacing;
use diic_geom::{Rect, SizingMode};
use diic_process::{exposure_spacing_check, ExposureModel};

fn bench(c: &mut Criterion) {
    let a = [Rect::new(0, 0, 2000, 2000)];
    let b = [Rect::new(2400, 0, 4400, 2000)];
    let model = ExposureModel::new(125.0, 0.5);
    let mut g = c.benchmark_group("fig13");
    g.bench_function("exposure_spacing_check", |bch| {
        bch.iter(|| exposure_spacing_check(&a, &b, &model, 250))
    });
    g.bench_function("geometric_distance_check", |bch| {
        bch.iter(|| check_rect_spacing(&a[0], &b[0], 750, SizingMode::Euclidean))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
