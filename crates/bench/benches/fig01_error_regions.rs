//! Fig. 1 bench: full DIIC pipeline vs flat mask-level checking on the
//! same generated chip (who pays what for correctness).

use criterion::{criterion_group, criterion_main, Criterion};
use diic_core::{check, flat_check, CheckOptions, FlatOptions};
use diic_gen::{generate, ChipSpec, ErrorKind};
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec::with_errors(
        6,
        4,
        vec![ErrorKind::NarrowWire, ErrorKind::CloseSpacing],
        91,
    ));
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let mut g = c.benchmark_group("fig01");
    g.sample_size(10);
    g.bench_function("diic_pipeline_6x4", |b| {
        b.iter(|| check(&layout, &tech, &CheckOptions::default()))
    });
    g.bench_function("flat_checker_6x4", |b| {
        b.iter(|| flat_check(&layout, &tech, &FlatOptions::default()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
