//! Fig. 11 bench: skeletal connectivity vs Boolean-union width checking
//! for validating a connection ("this eliminates using complicated polygon
//! routines to check simple connected elements").

use criterion::{criterion_group, criterion_main, Criterion};
use diic_geom::skeleton::Skeleton;
use diic_geom::width::shrink_expand_compare;
use diic_geom::{Rect, Region};

fn bench(c: &mut Criterion) {
    // A chain of overlapping wires.
    let rects: Vec<Rect> = (0..64)
        .map(|i| Rect::new(i * 1500, 0, i * 1500 + 2000, 500))
        .collect();
    let mut g = c.benchmark_group("fig11");
    g.bench_function("skeletal_connectivity_chain", |b| {
        b.iter(|| {
            let sk: Vec<Skeleton> = rects
                .iter()
                .map(|r| Skeleton::of_rect(r, 250).unwrap())
                .collect();
            let mut connected = 0;
            for w in sk.windows(2) {
                if w[0].connected_to(&w[1]) {
                    connected += 1;
                }
            }
            connected
        })
    });
    g.bench_function("union_width_check_chain", |b| {
        b.iter(|| {
            let union = Region::from_rects(rects.iter().copied());
            shrink_expand_compare(&union, 500).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
