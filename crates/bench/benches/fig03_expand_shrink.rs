//! Fig. 3 bench: orthogonal (exact Boolean) vs Euclidean (raster distance
//! transform) sizing.

use criterion::{criterion_group, criterion_main, Criterion};
use diic_geom::size::{expand, shrink};
use diic_geom::{Raster, Rect, Region};

fn workload() -> Region {
    Region::from_rects((0..12).flat_map(|i| {
        (0..12).map(move |j| Rect::new(i * 800, j * 800, i * 800 + 500, j * 800 + 500))
    }))
}

fn bench(c: &mut Criterion) {
    let region = workload();
    let bounds = region.bbox().unwrap().inflate(600).unwrap();
    let mut g = c.benchmark_group("fig03");
    g.bench_function("orthogonal_expand", |b| {
        b.iter(|| expand(&region, 250).unwrap())
    });
    g.bench_function("orthogonal_shrink", |b| {
        b.iter(|| shrink(&region, 100).unwrap())
    });
    g.sample_size(20);
    g.bench_function("euclidean_expand_raster", |b| {
        b.iter(|| {
            let raster = Raster::from_region(&region, bounds, 10);
            raster.euclidean_expand(250)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
