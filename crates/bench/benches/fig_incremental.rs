//! Incremental re-check bench: an edit session's patched re-check vs a
//! from-scratch run, per edit class (the e17 experiment's workloads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diic_core::incremental::{CheckSession, EditSet};
use diic_core::{check, CheckOptions};
use diic_gen::{generate, ChipSpec};
use diic_geom::Rect;
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec {
        demo_cells: false,
        ..ChipSpec::clean(12, 8)
    });
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let options = CheckOptions::default();
    let mut g = c.benchmark_group("fig_incremental");
    g.sample_size(10);

    g.bench_function(BenchmarkId::new("full-recheck", "12x8"), |b| {
        b.iter(|| check(&layout, &tech, &options))
    });

    // A live session with a probe wire being dragged around: the
    // net-neutral hot path.
    let mut session = CheckSession::new(layout.clone(), &tech, &options);
    let probe = session.layout().top_items().len();
    let mut add = EditSet::new();
    add.add_box("NM", Rect::new(0, -20000, 2000, -19250), Some("IO_PROBE"));
    session.apply(&add).unwrap();
    let mut flip = 0usize;
    g.bench_function(BenchmarkId::new("move-wire", "12x8"), |b| {
        b.iter(|| {
            let mut mv = EditSet::new();
            mv.translate(probe, if flip.is_multiple_of(2) { 2500 } else { -2500 }, 0);
            flip += 1;
            session.apply(&mv).unwrap()
        })
    });

    // Add + remove: the net graph genuinely changes, the net list
    // reassembles, but the re-check stays scoped to the stub.
    g.bench_function(BenchmarkId::new("add-remove-wire", "12x8"), |b| {
        b.iter(|| {
            let n = session.layout().top_items().len();
            let mut add = EditSet::new();
            add.add_box(
                "NM",
                Rect::new(5000, -20000, 7000, -19250),
                Some("IO_PROBE2"),
            );
            session.apply(&add).unwrap();
            let mut rm = EditSet::new();
            rm.remove(n);
            session.apply(&rm).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
