//! Stage-engine bench: serial vs parallel stages on a generated chip —
//! the interaction search (the Fig. 10 pipeline's embarrassingly
//! parallel tail) and the flat baseline's per-layer Boolean work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diic_core::{check, flat_check, CheckOptions, FlatOptions};
use diic_gen::{generate, ChipSpec};
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let chip = generate(&ChipSpec {
        demo_cells: false,
        ..ChipSpec::clean(12, 8)
    });
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let mut g = c.benchmark_group("fig16");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("interactions", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    check(
                        &layout,
                        &tech,
                        &CheckOptions {
                            parallelism: threads,
                            ..CheckOptions::default()
                        },
                    )
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("flat-baseline", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    flat_check(
                        &layout,
                        &tech,
                        &FlatOptions {
                            parallelism: threads,
                            ..FlatOptions::default()
                        },
                    )
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
