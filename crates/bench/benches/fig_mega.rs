//! Bounded-memory bench: tiled streaming vs buffered interaction
//! evaluation, and buffering vs streaming/counting sinks, on a
//! mega-chip slice — the memory-model knobs PR 4 added.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diic_core::{check, check_with_sink, CheckOptions, CountingSink, StageEngine};
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let chip = diic_gen::mega_chip(20_000);
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let mut g = c.benchmark_group("fig_mega");
    g.sample_size(10);
    for (label, tiled) in [("buffered", false), ("tiled", true)] {
        g.bench_with_input(
            BenchmarkId::new("interactions", label),
            &tiled,
            |b, &tiled| {
                b.iter(|| {
                    check(
                        &layout,
                        &tech,
                        &CheckOptions {
                            erc: false,
                            tiled_interactions: tiled,
                            parallelism: 0,
                            ..CheckOptions::default()
                        },
                    )
                })
            },
        );
    }
    g.bench_function("counting-sink", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            check_with_sink(
                &StageEngine::diic_pipeline(),
                &layout,
                &tech,
                &CheckOptions {
                    erc: false,
                    parallelism: 0,
                    ..CheckOptions::default()
                },
                &mut sink,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
