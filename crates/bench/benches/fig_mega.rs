//! Bounded-memory bench: tiled streaming vs buffered interaction
//! evaluation, and buffering vs streaming/counting sinks, on a
//! mega-chip slice — the memory-model knobs PR 4 added — plus a
//! wall-clock gate over the tiled end-to-end check, so a batch-kernel
//! or candidate-search regression fails the bench run loudly instead
//! of drifting in unread medians.

use criterion::{criterion_group, BenchmarkId, Criterion};
use diic_core::{check, check_with_sink, CheckOptions, CountingSink, SpillingSink, StageEngine};
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let chip = diic_gen::mega_chip(20_000);
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let mut g = c.benchmark_group("fig_mega");
    g.sample_size(10);
    for (label, tiled) in [("buffered", false), ("tiled", true)] {
        g.bench_with_input(
            BenchmarkId::new("interactions", label),
            &tiled,
            |b, &tiled| {
                b.iter(|| {
                    check(
                        &layout,
                        &tech,
                        &CheckOptions {
                            erc: false,
                            tiled_interactions: tiled,
                            parallelism: 0,
                            ..CheckOptions::default()
                        },
                    )
                })
            },
        );
    }
    g.bench_function("counting-sink", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            check_with_sink(
                &StageEngine::diic_pipeline(),
                &layout,
                &tech,
                &CheckOptions {
                    erc: false,
                    parallelism: 0,
                    ..CheckOptions::default()
                },
                &mut sink,
            )
        })
    });
    // The spilled report path end to end: same-net suppression off so
    // the clean slice produces report volume, a budget far below it so
    // every iteration writes sorted runs to disk and k-way merges them
    // back — pricing the external sort against the in-RAM paths above.
    g.bench_function("spilling-sink", |b| {
        b.iter(|| {
            let mut sink = SpillingSink::new(std::io::sink(), 256);
            check_with_sink(
                &StageEngine::diic_pipeline(),
                &layout,
                &tech,
                &CheckOptions {
                    erc: false,
                    parallelism: 0,
                    same_net_suppression: false,
                    ..CheckOptions::default()
                },
                &mut sink,
            );
            let (_, stats) = sink.finish().expect("sink writes cannot fail");
            assert!(stats.runs > 1, "budget 256 must spill the mega slice");
            stats
        })
    });
    g.finish();
}

criterion_group!(benches, bench);

/// The wall-clock assertion: the tiled check of a 20k-element mega
/// slice must finish within `FIG_MEGA_MAX_MS` milliseconds (default
/// 10 000 — generous against runner noise, loud against algorithmic
/// regressions in the columnar batch kernels or the candidate search,
/// which blow past it by orders of magnitude). Takes the best of
/// three runs so a one-off scheduler stall cannot fail the gate.
fn wall_clock_gate() {
    let tech = nmos_technology();
    let chip = diic_gen::mega_chip(20_000);
    let layout = diic_cif::parse(&chip.cif).unwrap();
    let max_ms: u64 = std::env::var("FIG_MEGA_MAX_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let opts = CheckOptions {
        erc: false,
        parallelism: 0,
        ..CheckOptions::default() // tiled interactions are the default
    };
    let best = (0..3)
        .map(|_| {
            let t0 = std::time::Instant::now();
            criterion::black_box(check(&layout, &tech, &opts));
            t0.elapsed()
        })
        .min()
        .expect("three timed runs");
    println!(
        "fig_mega wall-clock gate: best tiled check {:.1} ms (ceiling {max_ms} ms)",
        best.as_secs_f64() * 1e3
    );
    assert!(
        best.as_millis() as u64 <= max_ms,
        "tiled mega check took {:.1} ms, over the {max_ms} ms ceiling — \
         a kernel or candidate-search regression",
        best.as_secs_f64() * 1e3
    );
}

fn main() {
    benches();
    wall_clock_gate();
}
