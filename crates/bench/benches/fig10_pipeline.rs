//! Fig. 9/10 bench: hierarchical interaction search (with candidate cache)
//! vs flat search, as the array grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use diic_core::{check, CheckOptions};
use diic_gen::{generate, ChipSpec};
use diic_tech::nmos::nmos_technology;

fn bench(c: &mut Criterion) {
    let tech = nmos_technology();
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for (nx, ny) in [(4, 2), (8, 4), (12, 6)] {
        let chip = generate(&ChipSpec {
            demo_cells: false,
            ..ChipSpec::clean(nx, ny)
        });
        let layout = diic_cif::parse(&chip.cif).unwrap();
        g.bench_with_input(
            BenchmarkId::new("hierarchical", nx * ny),
            &layout,
            |b, l| b.iter(|| check(l, &tech, &CheckOptions::default())),
        );
        g.bench_with_input(BenchmarkId::new("flat_search", nx * ny), &layout, |b, l| {
            b.iter(|| {
                check(
                    l,
                    &tech,
                    &CheckOptions {
                        hierarchical: false,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
