//! Hierarchy validation and statistics.
//!
//! The paper exploits design hierarchy to avoid redundant checks; this
//! module provides the structural groundwork: cycle detection, topological
//! order (children before parents), per-symbol bounding boxes, and instance
//! counts (how many times each symbol is ultimately instantiated on the
//! chip — the flat-equivalent size).

use crate::error::{CifError, CifErrorKind};
use crate::layout::{Item, Layout, SymbolId};
use diic_geom::Rect;
use std::collections::HashMap;

/// Verifies that symbol calls form a DAG.
///
/// # Errors
///
/// [`CifErrorKind::RecursiveSymbol`] naming a symbol on a call cycle.
pub fn check_acyclic(layout: &Layout) -> Result<(), CifError> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = layout.symbols().len();
    let mut marks = vec![Mark::White; n];

    fn visit(layout: &Layout, id: SymbolId, marks: &mut [Mark]) -> Result<(), CifError> {
        match marks[id.0 as usize] {
            Mark::Black => return Ok(()),
            Mark::Grey => {
                return Err(CifError::new(
                    0,
                    CifErrorKind::RecursiveSymbol(layout.symbol(id).cif_id),
                ))
            }
            Mark::White => {}
        }
        marks[id.0 as usize] = Mark::Grey;
        for call in layout.symbol(id).calls() {
            visit(layout, call.target, marks)?;
        }
        marks[id.0 as usize] = Mark::Black;
        Ok(())
    }

    for i in 0..n {
        visit(layout, SymbolId(i as u32), &mut marks)?;
    }
    Ok(())
}

/// Returns the symbols in topological order: every symbol appears after all
/// symbols it calls (children first). Assumes an acyclic layout.
pub fn topological_order(layout: &Layout) -> Vec<SymbolId> {
    let n = layout.symbols().len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];

    fn visit(layout: &Layout, id: SymbolId, visited: &mut [bool], order: &mut Vec<SymbolId>) {
        if visited[id.0 as usize] {
            return;
        }
        visited[id.0 as usize] = true;
        for call in layout.symbol(id).calls() {
            visit(layout, call.target, visited, order);
        }
        order.push(id);
    }

    for i in 0..n {
        visit(layout, SymbolId(i as u32), &mut visited, &mut order);
    }
    order
}

/// Per-symbol and chip statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Bounding box of each symbol's own + called geometry (None if empty).
    pub symbol_bbox: HashMap<SymbolId, Option<Rect>>,
    /// How many times each symbol is instantiated on the chip in total
    /// (through all hierarchy paths).
    pub instance_counts: HashMap<SymbolId, u64>,
    /// Chip bounding box.
    pub chip_bbox: Option<Rect>,
    /// Flat-equivalent element count (elements × instantiations).
    pub flat_element_count: u64,
    /// Hierarchical (as-stored) element count.
    pub stored_element_count: u64,
}

/// Computes hierarchy statistics bottom-up without flattening.
pub fn stats(layout: &Layout) -> HierarchyStats {
    let order = topological_order(layout);
    let mut symbol_bbox: HashMap<SymbolId, Option<Rect>> = HashMap::new();
    let mut flat_elems: HashMap<SymbolId, u64> = HashMap::new();

    for id in &order {
        let sym = layout.symbol(*id);
        let mut bbox: Option<Rect> = None;
        let mut elems: u64 = 0;
        for item in &sym.items {
            match item {
                Item::Element(e) => {
                    let b = e.shape.bbox();
                    bbox = Some(bbox.map_or(b, |acc| acc.bounding_union(&b)));
                    elems += 1;
                }
                Item::Call(c) => {
                    if let Some(child) = symbol_bbox.get(&c.target).copied().flatten() {
                        let tb = c.transform.apply_rect(&child);
                        bbox = Some(bbox.map_or(tb, |acc| acc.bounding_union(&tb)));
                    }
                    elems += flat_elems.get(&c.target).copied().unwrap_or(0);
                }
            }
        }
        symbol_bbox.insert(*id, bbox);
        flat_elems.insert(*id, elems);
    }

    // Instance counts: push multiplicities down the DAG, parents before
    // children (reverse topological order), starting from the top level.
    let mut mult: HashMap<SymbolId, u64> = HashMap::new();
    for item in layout.top_items() {
        if let Item::Call(c) = item {
            *mult.entry(c.target).or_insert(0) += 1;
        }
    }
    for id in order.iter().rev() {
        let m = mult.get(id).copied().unwrap_or(0);
        if m == 0 {
            continue;
        }
        for call in layout.symbol(*id).calls() {
            *mult.entry(call.target).or_insert(0) += m;
        }
    }
    let instance_counts: HashMap<SymbolId, u64> =
        mult.into_iter().filter(|&(_, m)| m > 0).collect();

    let mut chip_bbox: Option<Rect> = None;
    let mut flat_element_count: u64 = 0;
    let mut stored_element_count: u64 = layout
        .symbols()
        .iter()
        .map(|s| s.elements().count() as u64)
        .sum();
    for item in layout.top_items() {
        match item {
            Item::Element(e) => {
                let b = e.shape.bbox();
                chip_bbox = Some(chip_bbox.map_or(b, |acc| acc.bounding_union(&b)));
                flat_element_count += 1;
                stored_element_count += 1;
            }
            Item::Call(c) => {
                if let Some(child) = symbol_bbox.get(&c.target).copied().flatten() {
                    let tb = c.transform.apply_rect(&child);
                    chip_bbox = Some(chip_bbox.map_or(tb, |acc| acc.bounding_union(&tb)));
                }
                flat_element_count += flat_elems.get(&c.target).copied().unwrap_or(0);
            }
        }
    }

    HierarchyStats {
        symbol_bbox,
        instance_counts,
        chip_bbox,
        flat_element_count,
        stored_element_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn topological_children_first() {
        let l = parse("DS 1; DF; DS 2; C 1; DF; DS 3; C 2; C 1; DF; C 3; E").unwrap();
        let order = topological_order(&l);
        let pos = |cif: u32| {
            order
                .iter()
                .position(|id| l.symbol(*id).cif_id == cif)
                .unwrap()
        };
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn stats_instance_counts_multiply() {
        // leaf called 2x by mid; mid called 3x at top => leaf 6, mid 3.
        let l = parse(
            "DS 1; L ND; B 2 2 0 0; DF;
             DS 2; C 1 T 0 0; C 1 T 10 0; DF;
             C 2; C 2 T 100 0; C 2 T 200 0; E",
        )
        .unwrap();
        let s = stats(&l);
        let leaf = l.symbol_by_cif_id(1).unwrap();
        let mid = l.symbol_by_cif_id(2).unwrap();
        assert_eq!(s.instance_counts.get(&leaf), Some(&6));
        assert_eq!(s.instance_counts.get(&mid), Some(&3));
        assert_eq!(s.flat_element_count, 6);
        assert_eq!(s.stored_element_count, 1);
    }

    #[test]
    fn stats_bbox_through_transforms() {
        let l = parse("DS 1; L ND; B 10 10 5 5; DF; C 1 T 100 100; E").unwrap();
        let s = stats(&l);
        assert_eq!(s.chip_bbox, Some(Rect::new(100, 100, 110, 110)));
    }

    #[test]
    fn empty_layout_stats() {
        let l = parse("E").unwrap();
        let s = stats(&l);
        assert_eq!(s.chip_bbox, None);
        assert_eq!(s.flat_element_count, 0);
    }

    #[test]
    fn uninstantiated_symbol_counts_zero() {
        let l = parse("DS 1; L ND; B 2 2 0 0; DF; E").unwrap();
        let s = stats(&l);
        let id = l.symbol_by_cif_id(1).unwrap();
        assert_eq!(s.instance_counts.get(&id), None);
        assert_eq!(s.flat_element_count, 0);
        assert_eq!(s.stored_element_count, 1);
    }
}
