//! The hierarchical layout model.
//!
//! "The key difference between the approach described here and that of most
//! other design rule checkers is that the chip is not treated purely as a
//! collection of geometry; the chip is never fully instantiated; the
//! information about what symbol the piece of geometry came from is never
//! lost." — the paper, §"Some Techniques".

use diic_geom::{Point, Polygon, Rect, Transform, Wire};
use std::collections::HashMap;

/// Index of a symbol within a [`Layout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u32);

/// Interned layer name reference (index into [`Layout::layer_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerRef(pub u16);

/// A primitive geometric element with the paper's net-identifier extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    /// The mask layer the element is drawn on.
    pub layer: LayerRef,
    /// The geometry.
    pub shape: Shape,
    /// Optional net identifier (`9N`), the paper's topological extension.
    pub net: Option<String>,
}

/// Primitive geometry of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// An axis-aligned box (`B`).
    Box(Rect),
    /// A wire (`W`).
    Wire(Wire),
    /// A polygon (`P`).
    Polygon(Polygon),
}

impl Shape {
    /// Bounding rectangle of the shape.
    pub fn bbox(&self) -> Rect {
        match self {
            Shape::Box(r) => *r,
            Shape::Wire(w) => w.bbox(),
            Shape::Polygon(p) => p.bbox(),
        }
    }

    /// The covered rectangles (exact for boxes/Manhattan wires/rectilinear
    /// polygons; a polygon that is not rectilinear returns its bbox —
    /// callers needing exactness must check [`Polygon::is_rectilinear`]).
    pub fn rects(&self) -> Vec<Rect> {
        match self {
            Shape::Box(r) => vec![*r],
            Shape::Wire(w) => w.to_rects(),
            Shape::Polygon(p) => p.to_rects().unwrap_or_else(|_| vec![p.bbox()]),
        }
    }

    /// Applies a transform, producing a new shape.
    pub fn transformed(&self, t: &Transform) -> Shape {
        match self {
            Shape::Box(r) => Shape::Box(t.apply_rect(r)),
            Shape::Wire(w) => Shape::Wire(
                Wire::new(
                    w.width(),
                    w.points().iter().map(|&p| t.apply_point(p)).collect(),
                )
                .expect("transform preserves wire validity"),
            ),
            Shape::Polygon(p) => Shape::Polygon(t.apply_polygon(p)),
        }
    }
}

/// A call (instantiation) of a symbol under a Manhattan transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The instantiated symbol.
    pub target: SymbolId,
    /// Placement transform.
    pub transform: Transform,
    /// Instance name for hierarchical net paths (`a.b` dot notation). The
    /// parser assigns `i<n>` by call order; APIs may set meaningful names.
    pub name: String,
}

/// An item in a symbol body or at top level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A primitive element.
    Element(Element),
    /// A symbol call.
    Call(Call),
}

/// The paper's device-type extension for a primitive symbol (`9D`), plus
/// the immunity flag (`9C`) and declared terminals (`9T`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceDecl {
    /// Device type name (e.g. `NMOS_ENH`, `CONTACT`, `RESISTOR`).
    pub device_type: String,
    /// True if the device is marked *checked* (immunity flag): its internal
    /// rules are waived — used for special devices that intentionally break
    /// the rules.
    pub checked: bool,
    /// Declared terminals.
    pub terminals: Vec<Terminal>,
}

/// A named device terminal at a local point on a layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Terminal {
    /// Terminal name (e.g. `G`, `S`, `D`).
    pub name: String,
    /// The layer the terminal connects on.
    pub layer: LayerRef,
    /// Local position within the symbol.
    pub position: Point,
}

/// A net label (`9L`): names the net of whatever element covers the point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetLabel {
    /// The net name (e.g. `VDD`, `GND`, `BUS_A`).
    pub net: String,
    /// The layer to bind on.
    pub layer: LayerRef,
    /// The labelled point (top-level coordinates).
    pub position: Point,
}

/// A symbol definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// The CIF `DS` numeric id.
    pub cif_id: u32,
    /// Optional human name (`9 <name>`).
    pub name: Option<String>,
    /// Device declaration if this is a primitive device symbol.
    pub device: Option<DeviceDecl>,
    /// Body items.
    pub items: Vec<Item>,
}

impl Symbol {
    /// Display name: the `9` name if present, else `S<cif_id>`.
    pub fn display_name(&self) -> String {
        self.name
            .clone()
            .unwrap_or_else(|| format!("S{}", self.cif_id))
    }

    /// True if this symbol is a declared primitive device.
    pub fn is_device(&self) -> bool {
        self.device.is_some()
    }

    /// Iterator over the primitive elements in the body.
    pub fn elements(&self) -> impl Iterator<Item = &Element> {
        self.items.iter().filter_map(|i| match i {
            Item::Element(e) => Some(e),
            Item::Call(_) => None,
        })
    }

    /// Iterator over the calls in the body.
    pub fn calls(&self) -> impl Iterator<Item = &Call> {
        self.items.iter().filter_map(|i| match i {
            Item::Call(c) => Some(c),
            Item::Element(_) => None,
        })
    }
}

/// A parsed extended-CIF layout: symbol table plus top-level items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Layout {
    symbols: Vec<Symbol>,
    by_cif_id: HashMap<u32, SymbolId>,
    layer_names: Vec<String>,
    top: Vec<Item>,
    labels: Vec<NetLabel>,
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Layout::default()
    }

    /// All symbols, indexable by [`SymbolId`].
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Looks up a symbol by id.
    pub fn symbol(&self, id: SymbolId) -> &Symbol {
        &self.symbols[id.0 as usize]
    }

    /// Looks up a symbol id by its CIF numeric id.
    pub fn symbol_by_cif_id(&self, cif_id: u32) -> Option<SymbolId> {
        self.by_cif_id.get(&cif_id).copied()
    }

    /// Looks up a symbol id by display name.
    pub fn symbol_by_name(&self, name: &str) -> Option<SymbolId> {
        self.symbols
            .iter()
            .position(|s| s.display_name() == name)
            .map(|i| SymbolId(i as u32))
    }

    /// Top-level items (the chip).
    pub fn top_items(&self) -> &[Item] {
        &self.top
    }

    /// Net labels.
    pub fn labels(&self) -> &[NetLabel] {
        &self.labels
    }

    /// The interned layer names.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// The name of a layer reference.
    pub fn layer_name(&self, l: LayerRef) -> &str {
        &self.layer_names[l.0 as usize]
    }

    /// Interns a layer name, returning its reference.
    pub fn intern_layer(&mut self, name: &str) -> LayerRef {
        if let Some(i) = self.layer_names.iter().position(|n| n == name) {
            LayerRef(i as u16)
        } else {
            self.layer_names.push(name.to_string());
            LayerRef((self.layer_names.len() - 1) as u16)
        }
    }

    /// Adds a symbol; returns its id.
    ///
    /// Duplicate CIF ids are the parser's job to reject; this method
    /// overwrites the id mapping if abused programmatically.
    pub fn add_symbol(&mut self, symbol: Symbol) -> SymbolId {
        let id = SymbolId(self.symbols.len() as u32);
        self.by_cif_id.insert(symbol.cif_id, id);
        self.symbols.push(symbol);
        id
    }

    /// Mutable access to a symbol (for programmatic construction).
    pub fn symbol_mut(&mut self, id: SymbolId) -> &mut Symbol {
        &mut self.symbols[id.0 as usize]
    }

    /// Adds a top-level item.
    pub fn push_top(&mut self, item: Item) {
        self.top.push(item);
    }

    /// Removes and returns the top-level item at `index` (later items
    /// shift down — element identity in checkers is positional, which is
    /// why edit sessions track runs per item).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn remove_top(&mut self, index: usize) -> Item {
        self.top.remove(index)
    }

    /// Mutable access to a top-level item (for programmatic edits).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn top_item_mut(&mut self, index: usize) -> &mut Item {
        &mut self.top[index]
    }

    /// Adds a net label.
    pub fn push_label(&mut self, label: NetLabel) {
        self.labels.push(label);
    }

    /// Total element count across all symbol bodies and the top level
    /// (not multiplied by instantiation).
    pub fn element_count(&self) -> usize {
        self.symbols
            .iter()
            .map(|s| s.elements().count())
            .sum::<usize>()
            + self
                .top
                .iter()
                .filter(|i| matches!(i, Item::Element(_)))
                .count()
    }

    /// Total call count across all symbol bodies and the top level.
    pub fn call_count(&self) -> usize {
        self.symbols
            .iter()
            .map(|s| s.calls().count())
            .sum::<usize>()
            + self
                .top
                .iter()
                .filter(|i| matches!(i, Item::Call(_)))
                .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use diic_geom::Vector;

    fn boxy(layer: LayerRef, r: Rect) -> Item {
        Item::Element(Element {
            layer,
            shape: Shape::Box(r),
            net: None,
        })
    }

    #[test]
    fn intern_layer_is_idempotent() {
        let mut l = Layout::new();
        let a = l.intern_layer("NP");
        let b = l.intern_layer("ND");
        let a2 = l.intern_layer("NP");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(l.layer_name(a), "NP");
    }

    #[test]
    fn add_symbol_and_lookup() {
        let mut l = Layout::new();
        let np = l.intern_layer("NP");
        let id = l.add_symbol(Symbol {
            cif_id: 5,
            name: Some("inv".into()),
            device: None,
            items: vec![boxy(np, Rect::new(0, 0, 20, 60))],
        });
        assert_eq!(l.symbol_by_cif_id(5), Some(id));
        assert_eq!(l.symbol_by_name("inv"), Some(id));
        assert_eq!(l.symbol(id).display_name(), "inv");
        assert_eq!(l.element_count(), 1);
    }

    #[test]
    fn display_name_fallback() {
        let s = Symbol {
            cif_id: 9,
            name: None,
            device: None,
            items: vec![],
        };
        assert_eq!(s.display_name(), "S9");
    }

    #[test]
    fn shape_transform_box() {
        let s = Shape::Box(Rect::new(0, 0, 10, 20));
        let t = Transform::translate(Vector::new(100, 0));
        assert_eq!(s.transformed(&t).bbox(), Rect::new(100, 0, 110, 20));
    }

    #[test]
    fn counts() {
        let mut l = Layout::new();
        let np = l.intern_layer("NP");
        let dev = l.add_symbol(Symbol {
            cif_id: 1,
            name: None,
            device: Some(DeviceDecl {
                device_type: "CONTACT".into(),
                checked: false,
                terminals: vec![],
            }),
            items: vec![boxy(np, Rect::new(0, 0, 20, 20))],
        });
        l.push_top(Item::Call(Call {
            target: dev,
            transform: Transform::IDENTITY,
            name: "i0".into(),
        }));
        l.push_top(boxy(np, Rect::new(0, 0, 100, 20)));
        assert_eq!(l.element_count(), 2);
        assert_eq!(l.call_count(), 1);
        assert!(l.symbol(dev).is_device());
    }
}
