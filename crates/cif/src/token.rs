//! CIF lexer.
//!
//! CIF is deliberately loose at the character level: commands are single
//! upper-case letters (plus the digit-prefixed user extensions), integers
//! may be separated by any "junk", comments are parenthesised (and nest),
//! and every command ends with a semicolon. The lexer normalises all of
//! this into a small token stream with line tracking.

use crate::error::{CifError, CifErrorKind};

/// One lexical token of a CIF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An upper-case command letter (`D`, `S`, `F`, `C`, `T`, `M`, `R`,
    /// `L`, `B`, `W`, `P`, `X`, `Y`, `E` …).
    Letter(char),
    /// A (signed) integer.
    Number(i64),
    /// A user-extension command: the digit and its raw body (up to the
    /// terminating semicolon, trimmed).
    Extension(char, String),
    /// Command terminator.
    Semi,
}

/// A token plus the 1-based line it started on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
}

/// Lexes CIF text into tokens.
///
/// # Errors
///
/// Returns [`CifError`] on unclosed comments or stray characters that are
/// not valid between commands (CIF tolerates most junk *between numbers*,
/// but we are stricter to catch real typos).
pub fn lex(input: &str) -> Result<Vec<Spanned>, CifError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() || c == ',' => {
                chars.next();
            }
            '(' => {
                // Nested comments.
                let mut depth = 0usize;
                for c in chars.by_ref() {
                    match c {
                        '(' => depth += 1,
                        ')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        '\n' => line += 1,
                        _ => {}
                    }
                }
                if depth != 0 {
                    return Err(CifError::new(line, CifErrorKind::UnclosedComment));
                }
            }
            ';' => {
                out.push(Spanned {
                    token: Token::Semi,
                    line,
                });
                chars.next();
            }
            '-' => {
                chars.next();
                let n = lex_number(&mut chars, line, true)?;
                out.push(Spanned {
                    token: Token::Number(n),
                    line,
                });
            }
            '0'..='9' => {
                // Could be a plain number or, at command position, a user
                // extension. Context decides: an extension starts a command,
                // i.e. the previous token is a semicolon (or nothing).
                let at_command = matches!(
                    out.last(),
                    None | Some(Spanned {
                        token: Token::Semi,
                        ..
                    })
                );
                if at_command {
                    let digit = c;
                    chars.next();
                    let mut body = String::new();
                    for c in chars.by_ref() {
                        if c == ';' {
                            break;
                        }
                        if c == '\n' {
                            line += 1;
                        }
                        body.push(c);
                    }
                    // The body is kept raw (only right-trimmed): a leading
                    // space distinguishes the symbol-name form `9 <name>`
                    // from sub-commands like `9N <net>`.
                    out.push(Spanned {
                        token: Token::Extension(digit, body.trim_end().to_string()),
                        line,
                    });
                    out.push(Spanned {
                        token: Token::Semi,
                        line,
                    });
                } else {
                    let n = lex_number(&mut chars, line, false)?;
                    out.push(Spanned {
                        token: Token::Number(n),
                        line,
                    });
                }
            }
            'A'..='Z' | 'a'..='z' => {
                // Lower-case letters are accepted as their upper-case
                // commands (seen in hand-written CIF).
                let upper = c.to_ascii_uppercase();
                // `E` at command position ends the file; everything after it
                // is ignored per the CIF definition.
                let at_command = matches!(
                    out.last(),
                    None | Some(Spanned {
                        token: Token::Semi,
                        ..
                    })
                );
                chars.next();
                out.push(Spanned {
                    token: Token::Letter(upper),
                    line,
                });
                if upper == 'E' && at_command {
                    break;
                }
            }
            other => {
                return Err(CifError::new(line, CifErrorKind::UnexpectedChar(other)));
            }
        }
    }
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    line: usize,
    negative: bool,
) -> Result<i64, CifError> {
    let mut value: i64 = 0;
    let mut any = false;
    while let Some(&c) = chars.peek() {
        if let Some(d) = c.to_digit(10) {
            value = value * 10 + d as i64;
            any = true;
            chars.next();
        } else {
            break;
        }
    }
    if !any {
        return Err(CifError::new(
            line,
            CifErrorKind::ExpectedNumber("after '-'".into()),
        ));
    }
    Ok(if negative { -value } else { value })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        lex(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn numbers_and_letters() {
        assert_eq!(
            toks("B 20 60 10,30;"),
            vec![
                Token::Letter('B'),
                Token::Number(20),
                Token::Number(60),
                Token::Number(10),
                Token::Number(30),
                Token::Semi
            ]
        );
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(
            toks("T -5 -10;"),
            vec![
                Token::Letter('T'),
                Token::Number(-5),
                Token::Number(-10),
                Token::Semi
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_nest() {
        // Lexing stops at the E command; the trailing semicolon is ignored.
        assert_eq!(
            toks("(a comment (nested) more) E;"),
            vec![Token::Letter('E')]
        );
    }

    #[test]
    fn unclosed_comment_is_error() {
        assert!(lex("(oops").is_err());
    }

    #[test]
    fn extension_at_command_position() {
        assert_eq!(
            toks("9N VDD;"),
            vec![Token::Extension('9', "N VDD".into()), Token::Semi]
        );
        // Digits inside a command are numbers, not extensions.
        assert_eq!(
            toks("DS 9 1 1;"),
            vec![
                Token::Letter('D'),
                Token::Letter('S'),
                Token::Number(9),
                Token::Number(1),
                Token::Number(1),
                Token::Semi
            ]
        );
    }

    #[test]
    fn lowercase_commands_normalised() {
        assert_eq!(toks("b 1 1 0 0;"), toks("B 1 1 0 0;"));
        assert_eq!(toks("e;"), vec![Token::Letter('E')]);
    }

    #[test]
    fn line_tracking() {
        let spanned = lex("B 1 1 0 0;\nB 2 2 0 0;").unwrap();
        assert_eq!(spanned.first().unwrap().line, 1);
        assert_eq!(spanned.last().unwrap().line, 2);
    }

    #[test]
    fn stray_punctuation_rejected() {
        assert!(lex("B 1 ! 1;").is_err());
    }
}
