//! CIF writer: [`Layout`] → text, round-trippable through
//! [`parse()`](crate::parse::parse).

use crate::layout::{Item, Layout, Shape};
use diic_geom::{Orientation, Transform};
use std::fmt::Write as _;

/// Serialises a layout to extended-CIF text.
///
/// The output uses one command per line, emits `9 <name>` / `9D` / `9C` /
/// `9T` / `9N` / `9L` extensions, and ends with `E`. Parsing the output
/// yields an equivalent layout (same symbols, items, nets and labels;
/// instance names are regenerated in the same order).
pub fn to_cif(layout: &Layout) -> String {
    let mut s = String::new();
    for sym in layout.symbols() {
        let _ = writeln!(s, "DS {} 1 1;", sym.cif_id);
        if let Some(name) = &sym.name {
            let _ = writeln!(s, "9 {name};");
        }
        if let Some(dev) = &sym.device {
            let _ = writeln!(s, "9D {};", dev.device_type);
            for t in &dev.terminals {
                let _ = writeln!(
                    s,
                    "9T {} {} {} {};",
                    t.name,
                    layout.layer_name(t.layer),
                    t.position.x,
                    t.position.y
                );
            }
            if dev.checked {
                s.push_str("9C;\n");
            }
        }
        write_items(&mut s, layout, &sym.items);
        s.push_str("DF;\n");
    }
    write_items(&mut s, layout, layout.top_items());
    for label in layout.labels() {
        let _ = writeln!(
            s,
            "9L {} {} {} {};",
            label.net,
            layout.layer_name(label.layer),
            label.position.x,
            label.position.y
        );
    }
    s.push_str("E\n");
    s
}

fn write_items(s: &mut String, layout: &Layout, items: &[Item]) {
    for item in items {
        match item {
            Item::Element(e) => {
                if let Some(net) = &e.net {
                    let _ = writeln!(s, "9N {net};");
                }
                let _ = writeln!(s, "L {};", layout.layer_name(e.layer));
                match &e.shape {
                    Shape::Box(r) => {
                        let _ = writeln!(
                            s,
                            "B {} {} {} {};",
                            r.width(),
                            r.height(),
                            r.x1 + r.width() / 2,
                            r.y1 + r.height() / 2
                        );
                    }
                    Shape::Wire(w) => {
                        let _ = write!(s, "W {}", w.width());
                        for p in w.points() {
                            let _ = write!(s, " {} {}", p.x, p.y);
                        }
                        s.push_str(";\n");
                    }
                    Shape::Polygon(p) => {
                        let _ = write!(s, "P");
                        for pt in p.points() {
                            let _ = write!(s, " {} {}", pt.x, pt.y);
                        }
                        s.push_str(";\n");
                    }
                }
            }
            Item::Call(c) => {
                let sym = layout.symbol(c.target);
                let _ = write!(s, "C {}", sym.cif_id);
                write_transform(s, &c.transform);
                s.push_str(";\n");
            }
        }
    }
}

fn write_transform(s: &mut String, t: &Transform) {
    // Decompose into (orientation ops, then translation) — our Transform is
    // exactly `orient` then `offset`, so emit R/M then T.
    match t.orient {
        Orientation::R0 => {}
        Orientation::R90 => s.push_str(" R 0 1"),
        Orientation::R180 => s.push_str(" R -1 0"),
        Orientation::R270 => s.push_str(" R 0 -1"),
        Orientation::MR0 => s.push_str(" M X"),
        Orientation::MR90 => s.push_str(" M X R 0 1"),
        Orientation::MR180 => s.push_str(" M Y"),
        Orientation::MR270 => s.push_str(" M X R 0 -1"),
    }
    if t.offset.x != 0 || t.offset.y != 0 {
        let _ = write!(s, " T {} {}", t.offset.x, t.offset.y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flatten::flatten;
    use crate::parse;

    fn roundtrip(text: &str) {
        let a = parse(text).unwrap();
        let cif = to_cif(&a);
        let b = parse(&cif).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{cif}"));
        // Compare flat instantiations (stable under renaming/reordering).
        let fa = flatten(&a);
        let fb = flatten(&b);
        assert_eq!(fa.len(), fb.len(), "element count changed:\n{cif}");
        for (x, y) in fa.iter().zip(fb.iter()) {
            assert_eq!(x.shape, y.shape, "shape changed:\n{cif}");
            assert_eq!(x.net, y.net);
            assert_eq!(
                a.layer_name(x.layer),
                b.layer_name(y.layer),
                "layer changed"
            );
        }
        assert_eq!(a.labels().len(), b.labels().len());
    }

    #[test]
    fn roundtrip_boxes_wires_polygons() {
        roundtrip("L NM; B 40 20 20 10; 9N A; W 20 0 0 100 0; L NP; P 0 0 50 0 50 50 0 50; E");
    }

    #[test]
    fn roundtrip_hierarchy_and_transforms() {
        roundtrip(
            "DS 1; 9 cell; L ND; B 10 10 5 5; DF;
             C 1 T 0 0; C 1 MX T 100 0; C 1 R 0 1 T 50 50; C 1 M Y R 0 -1 T 7 9; E",
        );
    }

    #[test]
    fn roundtrip_device_declarations() {
        roundtrip("DS 1; 9 tr; 9D NMOS_ENH; 9T G NP 10 10; 9C; L NP; B 20 60 10 30; DF; C 1; E");
    }

    #[test]
    fn roundtrip_labels() {
        roundtrip("L NM; B 4 4 0 0; 9L VDD NM 0 0; E");
    }

    #[test]
    fn all_orientations_roundtrip() {
        for orient_ops in [
            "",
            "M X",
            "M Y",
            "R 0 1",
            "R -1 0",
            "R 0 -1",
            "M X R 0 1",
            "M X R 0 -1",
        ] {
            let text = format!("DS 1; L ND; B 10 4 9 2; DF; C 1 {orient_ops} T 31 17; E");
            roundtrip(&text);
        }
    }
}
