//! # diic-cif — extended Caltech Intermediate Form (CIF) for DIIC
//!
//! The paper's checker consumes "an extension of CIF \[Sproull, Lyon,
//! Trimberger 1979\]. This data form allows symbol definitions, calls to
//! symbol definitions, and primitive geometrical constructs. The extension
//! \[...\] allows a net identifier to be attached to each primitive element
//! and a device 'type' identifier to each primitive symbol."
//!
//! This crate implements:
//!
//! * a CIF 2.0 **lexer and parser** (`DS`/`DF`, `C` with `T`/`MX`/`MY`/`R`
//!   transform lists, `L`, `B`, `W`, `P`, comments, `E`);
//! * the paper's **extensions**, encoded as CIF user-extension (`9…`)
//!   commands:
//!   - `9 <name>;` — symbol name (the historical Caltech convention),
//!   - `9N <net>;` — net identifier for the **next** primitive element,
//!   - `9D <type>;` — declares the enclosing symbol a primitive **device**
//!     of the given type (transistor, contact, …),
//!   - `9C;` — marks the enclosing device *checked* (the immunity flag that
//!     waives its internal rules — for special devices that intentionally
//!     break the rules),
//!   - `9T <terminal> <layer> <x> <y>;` — declares a named device terminal
//!     at a local point on a layer (used by net-list generation),
//!   - `9L <net> <layer> <x> <y>;` — a net label at a point (used to name
//!     power/ground/bus nets at the chip level);
//! * the hierarchical **layout model** ([`Layout`], [`Symbol`], [`Element`],
//!   [`Call`]) in which "the chip is never fully instantiated" — plus an
//!   explicit [`flatten()`](flatten::flatten) pass used only by the *baseline* flat checker the
//!   paper critiques;
//! * hierarchy validation (undefined symbols, call cycles) and statistics;
//! * a writer producing round-trippable CIF text.
//!
//! Per the DIIC design style, calls may be rotated only by the four axis
//! directions (`R 1 0`, `R 0 1`, `R -1 0`, `R 0 -1`); arbitrary-angle
//! rotations are a parse error (documented substitution, see `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! let text = "
//! DS 1 1 1;
//! 9 inv;
//! L NP; B 20 60 10,30;
//! DF;
//! C 1 T 0 0;
//! C 1 T 100 0;
//! E
//! ";
//! let layout = diic_cif::parse(text)?;
//! assert_eq!(layout.symbols().len(), 1);
//! assert_eq!(layout.top_items().len(), 2);
//! # Ok::<(), diic_cif::CifError>(())
//! ```

pub mod error;
pub mod flatten;
pub mod hierarchy;
pub mod layout;
pub mod parse;
pub mod token;
pub mod write;

pub use error::CifError;
pub use flatten::{flatten, FlatElement};
pub use layout::{
    Call, DeviceDecl, Element, Item, LayerRef, Layout, NetLabel, Shape, Symbol, SymbolId, Terminal,
};
pub use parse::parse;
pub use write::to_cif;
