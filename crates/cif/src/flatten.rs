//! Full instantiation (flattening) of a hierarchical layout.
//!
//! The DIIC pipeline **never** does this — "the chip is never fully
//! instantiated" — but the traditional mask-level checkers the paper
//! critiques do, and our baseline flat checker needs the same input. The
//! flattener also drives differential tests: hierarchical results must
//! agree with flat results on designs without hierarchy-specific waivers.

use crate::layout::{Item, LayerRef, Layout, Shape, SymbolId};
use diic_geom::Transform;

/// One fully-instantiated element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatElement {
    /// The mask layer.
    pub layer: LayerRef,
    /// Geometry in chip coordinates.
    pub shape: Shape,
    /// Fully-qualified net identifier (`a.b.net` dot notation), if the
    /// element carried one.
    pub net: Option<String>,
    /// Instance path (`a.b`), empty for top-level elements.
    pub path: String,
    /// The symbol the element came from (None for top-level elements) —
    /// the information a flat checker throws away.
    pub source: Option<SymbolId>,
    /// True if the element lives inside a declared device symbol.
    pub in_device: bool,
}

/// Fully instantiates the layout.
///
/// Net identifiers are qualified with the instance path using the paper's
/// dot notation: element net `n` inside instance `a` of instance `b` becomes
/// `b.a.n`. Elements without nets get `None`.
pub fn flatten(layout: &Layout) -> Vec<FlatElement> {
    let mut out = Vec::new();
    for item in layout.top_items() {
        flatten_item(
            layout,
            item,
            &Transform::IDENTITY,
            "",
            None,
            false,
            &mut out,
        );
    }
    out
}

fn flatten_item(
    layout: &Layout,
    item: &Item,
    t: &Transform,
    path: &str,
    source: Option<SymbolId>,
    in_device: bool,
    out: &mut Vec<FlatElement>,
) {
    match item {
        Item::Element(e) => {
            let net = e.net.as_ref().map(|n| {
                if path.is_empty() {
                    n.clone()
                } else {
                    format!("{path}.{n}")
                }
            });
            out.push(FlatElement {
                layer: e.layer,
                shape: e.shape.transformed(t),
                net,
                path: path.to_string(),
                source,
                in_device,
            });
        }
        Item::Call(c) => {
            let sym = layout.symbol(c.target);
            let child_path = if path.is_empty() {
                c.name.clone()
            } else {
                format!("{path}.{}", c.name)
            };
            let child_t = t.after(&c.transform);
            let child_in_device = in_device || sym.is_device();
            for child in &sym.items {
                flatten_item(
                    layout,
                    child,
                    &child_t,
                    &child_path,
                    Some(c.target),
                    child_in_device,
                    out,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use diic_geom::Rect;

    #[test]
    fn flatten_two_instances() {
        let l = parse("DS 1; L ND; B 10 10 5 5; DF; C 1 T 0 0; C 1 T 100 0; E").unwrap();
        let flat = flatten(&l);
        assert_eq!(flat.len(), 2);
        assert_eq!(flat[0].shape.bbox(), Rect::new(0, 0, 10, 10));
        assert_eq!(flat[1].shape.bbox(), Rect::new(100, 0, 110, 10));
        assert_eq!(flat[0].path, "i0");
        assert_eq!(flat[1].path, "i1");
    }

    #[test]
    fn nested_paths_use_dot_notation() {
        let l = parse(
            "DS 1; L ND; 9N out; B 10 10 5 5; DF;
             DS 2; C 1 T 0 0; DF;
             C 2 T 0 0; E",
        )
        .unwrap();
        let flat = flatten(&l);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].path, "i0.i0");
        assert_eq!(flat[0].net.as_deref(), Some("i0.i0.out"));
    }

    #[test]
    fn transforms_compose_through_hierarchy() {
        let l = parse(
            "DS 1; L ND; B 10 10 5 5; DF;
             DS 2; C 1 T 20 0; DF;
             C 2 T 0 100; E",
        )
        .unwrap();
        let flat = flatten(&l);
        assert_eq!(flat[0].shape.bbox(), Rect::new(20, 100, 30, 110));
    }

    #[test]
    fn mirror_transform_flattened() {
        let l = parse("DS 1; L ND; B 10 10 15 5; DF; C 1 MX; E").unwrap();
        let flat = flatten(&l);
        // Box at [10,20]x[0,10] mirrored in x -> [-20,-10]x[0,10].
        assert_eq!(flat[0].shape.bbox(), Rect::new(-20, 0, -10, 10));
    }

    #[test]
    fn device_membership_propagates() {
        let l = parse(
            "DS 1; 9D CONTACT; L NC; B 4 4 0 0; DF;
             DS 2; C 1; L NM; B 20 4 0 0; DF;
             C 2; E",
        )
        .unwrap();
        let flat = flatten(&l);
        let contact = flat
            .iter()
            .find(|e| matches!(e.shape, Shape::Box(r) if r.width() == 4 && r.height() == 4))
            .unwrap();
        assert!(contact.in_device);
        let metal = flat
            .iter()
            .find(|e| matches!(e.shape, Shape::Box(r) if r.width() == 20))
            .unwrap();
        assert!(!metal.in_device);
    }

    #[test]
    fn top_level_elements_have_empty_path() {
        let l = parse("L NM; 9N VDD; B 10 10 0 0; E").unwrap();
        let flat = flatten(&l);
        assert_eq!(flat[0].path, "");
        assert_eq!(flat[0].net.as_deref(), Some("VDD"));
        assert_eq!(flat[0].source, None);
    }
}
