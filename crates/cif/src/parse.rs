//! CIF parser: token stream → [`Layout`].

use crate::error::{CifError, CifErrorKind};
use crate::layout::{
    Call, DeviceDecl, Element, Item, LayerRef, Layout, NetLabel, Shape, Symbol, SymbolId, Terminal,
};
use crate::token::{lex, Spanned, Token};
use diic_geom::{Coord, Orientation, Point, Polygon, Rect, Transform, Vector, Wire};

/// Parses extended-CIF text into a validated [`Layout`].
///
/// Validation performed here: syntax, duplicate/undefined symbol ids,
/// non-Manhattan rotations, malformed shapes and extensions, and call
/// cycles. Geometry/design-rule checking is the job of `diic-core`.
///
/// # Errors
///
/// [`CifError`] with a line number and a specific [`CifErrorKind`].
pub fn parse(input: &str) -> Result<Layout, CifError> {
    let tokens = lex(input)?;
    Parser::new(tokens).run()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    layout: Layout,
    /// Symbol currently being defined, with its scale numerator/denominator.
    current: Option<(Symbol, Coord, Coord, usize)>, // (symbol, a, b, start_line)
    /// Net identifier pending for the next primitive element.
    pending_net: Option<String>,
    /// Current layer, per CIF (persists across symbol boundaries).
    current_layer: Option<LayerRef>,
    /// Per-scope instance counters for generated call names.
    top_calls: usize,
    /// Calls store the *CIF id* in `SymbolId` until resolution.
    done: bool,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Self {
        Parser {
            tokens,
            pos: 0,
            layout: Layout::new(),
            current: None,
            pending_net: None,
            current_layer: None,
            top_calls: 0,
            done: false,
        }
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, kind: CifErrorKind) -> CifError {
        CifError::new(self.line(), kind)
    }

    fn expect_number(&mut self, ctx: &str) -> Result<i64, CifError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            _ => Err(CifError::new(
                self.line(),
                CifErrorKind::ExpectedNumber(ctx.into()),
            )),
        }
    }

    fn expect_semi(&mut self, ctx: &str) -> Result<(), CifError> {
        match self.next() {
            Some(Token::Semi) => Ok(()),
            _ => Err(CifError::new(
                self.line(),
                CifErrorKind::ExpectedSemicolon(ctx.into()),
            )),
        }
    }

    fn scale(&self, v: i64) -> Coord {
        match &self.current {
            Some((_, a, b, _)) => v * a / b,
            None => v,
        }
    }

    fn run(mut self) -> Result<Layout, CifError> {
        while let Some(tok) = self.next() {
            if self.done {
                break;
            }
            match tok {
                Token::Semi => {} // empty command
                Token::Letter('D') => match self.next() {
                    Some(Token::Letter('S')) => self.cmd_ds()?,
                    Some(Token::Letter('F')) => self.cmd_df()?,
                    Some(Token::Letter('D')) => {
                        // "DD n;" (delete definitions) — accepted and ignored.
                        while !matches!(self.peek(), Some(Token::Semi) | None) {
                            self.next();
                        }
                        self.expect_semi("DD")?;
                    }
                    _ => return Err(self.err(CifErrorKind::UnknownCommand('D'))),
                },
                Token::Letter('C') => self.cmd_call()?,
                Token::Letter('L') => self.cmd_layer()?,
                Token::Letter('B') => self.cmd_box()?,
                Token::Letter('W') => self.cmd_wire()?,
                Token::Letter('P') => self.cmd_polygon()?,
                Token::Letter('E') => {
                    self.done = true;
                }
                Token::Letter(c) => return Err(self.err(CifErrorKind::UnknownCommand(c))),
                Token::Extension(digit, body) => {
                    self.cmd_extension(digit, &body)?;
                    self.expect_semi("extension")?;
                }
                Token::Number(_) => {
                    return Err(self.err(CifErrorKind::ExpectedSemicolon("command".into())))
                }
            }
        }
        if let Some((sym, _, _, line)) = self.current.take() {
            return Err(CifError::new(
                line,
                CifErrorKind::UnclosedDefinition(sym.cif_id),
            ));
        }
        self.resolve_calls()?;
        crate::hierarchy::check_acyclic(&self.layout)?;
        Ok(self.layout)
    }

    fn cmd_ds(&mut self) -> Result<(), CifError> {
        if self.current.is_some() {
            return Err(self.err(CifErrorKind::NestedDefinition));
        }
        let line = self.line();
        let id = self.expect_number("DS id")? as u32;
        if self.layout.symbol_by_cif_id(id).is_some() {
            return Err(self.err(CifErrorKind::DuplicateSymbol(id)));
        }
        let (a, b) = match self.peek() {
            Some(Token::Number(_)) => {
                let a = self.expect_number("DS scale a")?;
                let b = self.expect_number("DS scale b")?;
                if a <= 0 || b <= 0 {
                    return Err(self.err(CifErrorKind::MalformedShape(
                        "DS scale factors must be positive".into(),
                    )));
                }
                (a, b)
            }
            _ => (1, 1),
        };
        self.expect_semi("DS")?;
        self.current = Some((
            Symbol {
                cif_id: id,
                name: None,
                device: None,
                items: Vec::new(),
            },
            a,
            b,
            line,
        ));
        Ok(())
    }

    fn cmd_df(&mut self) -> Result<(), CifError> {
        let Some((symbol, _, _, _)) = self.current.take() else {
            return Err(self.err(CifErrorKind::UnmatchedEnd));
        };
        self.expect_semi("DF")?;
        self.layout.add_symbol(symbol);
        Ok(())
    }

    fn cmd_call(&mut self) -> Result<(), CifError> {
        let target = self.expect_number("C symbol id")? as u32;
        let mut t = Transform::IDENTITY;
        loop {
            match self.peek() {
                Some(Token::Letter('T')) => {
                    self.next();
                    let x = self.expect_number("T x")?;
                    let y = self.expect_number("T y")?;
                    let op = Transform::translate(Vector::new(self.scale(x), self.scale(y)));
                    t = op.after(&t);
                }
                Some(Token::Letter('M')) => {
                    self.next();
                    let axis = self.next();
                    let op = match axis {
                        Some(Token::Letter('X')) => Transform::new(Orientation::MR0, Vector::ZERO),
                        Some(Token::Letter('Y')) => {
                            Transform::new(Orientation::MR180, Vector::ZERO)
                        }
                        _ => return Err(self.err(CifErrorKind::UnknownCommand('M'))),
                    };
                    t = op.after(&t);
                }
                Some(Token::Letter('R')) => {
                    self.next();
                    let a = self.expect_number("R a")?;
                    let b = self.expect_number("R b")?;
                    let Some(orient) = Orientation::from_cif_direction(a, b) else {
                        return Err(self.err(CifErrorKind::NonManhattanRotation(a, b)));
                    };
                    let op = Transform::new(orient, Vector::ZERO);
                    t = op.after(&t);
                }
                Some(Token::Semi) => {
                    self.next();
                    break;
                }
                _ => return Err(self.err(CifErrorKind::ExpectedSemicolon("call".into()))),
            }
        }
        let name = match &mut self.current {
            Some((sym, ..)) => format!("i{}", sym.calls().count()),
            None => {
                let n = format!("i{}", self.top_calls);
                self.top_calls += 1;
                n
            }
        };
        // Store the raw CIF id; resolve_calls patches it to a SymbolId.
        let call = Item::Call(Call {
            target: SymbolId(target),
            transform: t,
            name,
        });
        self.push_item(call);
        Ok(())
    }

    fn cmd_layer(&mut self) -> Result<(), CifError> {
        let mut name = String::new();
        loop {
            match self.peek() {
                Some(Token::Letter(c)) => {
                    name.push(*c);
                    self.next();
                }
                Some(Token::Number(n)) if !name.is_empty() => {
                    name.push_str(&n.to_string());
                    self.next();
                }
                _ => break,
            }
        }
        if name.is_empty() {
            return Err(self.err(CifErrorKind::MissingLayer));
        }
        self.expect_semi("L")?;
        self.current_layer = Some(self.layout.intern_layer(&name));
        Ok(())
    }

    fn take_net(&mut self) -> Option<String> {
        self.pending_net.take()
    }

    fn current_layer(&self) -> Result<LayerRef, CifError> {
        self.current_layer
            .ok_or_else(|| self.err(CifErrorKind::NoCurrentLayer))
    }

    fn cmd_box(&mut self) -> Result<(), CifError> {
        let layer = self.current_layer()?;
        let length = self.expect_number("B length")?;
        let length = self.scale(length);
        let width = self.expect_number("B width")?;
        let width = self.scale(width);
        let cx = self.expect_number("B cx")?;
        let cx = self.scale(cx);
        let cy = self.expect_number("B cy")?;
        let cy = self.scale(cy);
        if length <= 0 || width <= 0 {
            return Err(self.err(CifErrorKind::MalformedShape(format!(
                "box dimensions must be positive, got {length}x{width}"
            ))));
        }
        // Optional direction: rotates the length axis.
        let (length, width) = match self.peek() {
            Some(Token::Number(_)) => {
                let dx = self.expect_number("B direction x")?;
                let dy = self.expect_number("B direction y")?;
                match Orientation::from_cif_direction(dx, dy) {
                    Some(Orientation::R0) | Some(Orientation::R180) => (length, width),
                    Some(Orientation::R90) | Some(Orientation::R270) => (width, length),
                    _ => return Err(self.err(CifErrorKind::NonManhattanRotation(dx, dy))),
                }
            }
            _ => (length, width),
        };
        self.expect_semi("B")?;
        let net = self.take_net();
        self.push_item(Item::Element(Element {
            layer,
            shape: Shape::Box(Rect::from_center(Point::new(cx, cy), length, width)),
            net,
        }));
        Ok(())
    }

    fn cmd_wire(&mut self) -> Result<(), CifError> {
        let layer = self.current_layer()?;
        let width = self.expect_number("W width")?;
        let width = self.scale(width);
        let mut pts = Vec::new();
        while let Some(Token::Number(_)) = self.peek() {
            let x = self.expect_number("W x")?;
            let y = self.expect_number("W y")?;
            pts.push(Point::new(self.scale(x), self.scale(y)));
        }
        self.expect_semi("W")?;
        let wire = Wire::new(width, pts)
            .map_err(|e| self.err(CifErrorKind::MalformedShape(e.to_string())))?;
        let net = self.take_net();
        self.push_item(Item::Element(Element {
            layer,
            shape: Shape::Wire(wire),
            net,
        }));
        Ok(())
    }

    fn cmd_polygon(&mut self) -> Result<(), CifError> {
        let layer = self.current_layer()?;
        let mut pts = Vec::new();
        while let Some(Token::Number(_)) = self.peek() {
            let x = self.expect_number("P x")?;
            let y = self.expect_number("P y")?;
            pts.push(Point::new(self.scale(x), self.scale(y)));
        }
        self.expect_semi("P")?;
        let poly =
            Polygon::new(pts).map_err(|e| self.err(CifErrorKind::MalformedShape(e.to_string())))?;
        let net = self.take_net();
        self.push_item(Item::Element(Element {
            layer,
            shape: Shape::Polygon(poly),
            net,
        }));
        Ok(())
    }

    fn cmd_extension(&mut self, digit: char, body: &str) -> Result<(), CifError> {
        if digit != '9' {
            return Ok(()); // other user extensions are ignored
        }
        if let Some(rest) = body.strip_prefix(' ') {
            // `9 <name>` — symbol name.
            let name = rest.trim();
            if name.is_empty() {
                return Err(self.err(CifErrorKind::MalformedExtension(
                    "9 <name> requires a name".into(),
                )));
            }
            if let Some((sym, ..)) = &mut self.current {
                sym.name = Some(name.to_string());
            }
            return Ok(());
        }
        let mut chars = body.chars();
        let sub = chars.next().unwrap_or(' ');
        let rest = chars.as_str().trim();
        match sub {
            'N' => {
                if rest.is_empty() {
                    return Err(self.err(CifErrorKind::MalformedExtension(
                        "9N requires a net name".into(),
                    )));
                }
                self.pending_net = Some(rest.to_string());
            }
            'D' => {
                if rest.is_empty() {
                    return Err(self.err(CifErrorKind::MalformedExtension(
                        "9D requires a device type".into(),
                    )));
                }
                let Some((sym, ..)) = &mut self.current else {
                    return Err(self.err(CifErrorKind::DeviceOutsideSymbol));
                };
                match &mut sym.device {
                    Some(d) => d.device_type = rest.to_string(),
                    None => {
                        sym.device = Some(DeviceDecl {
                            device_type: rest.to_string(),
                            checked: false,
                            terminals: Vec::new(),
                        })
                    }
                }
            }
            'C' => {
                let Some((sym, ..)) = &mut self.current else {
                    return Err(self.err(CifErrorKind::DeviceOutsideSymbol));
                };
                match &mut sym.device {
                    Some(d) => d.checked = true,
                    None => {
                        return Err(self.err(CifErrorKind::MalformedExtension(
                            "9C must follow a 9D device declaration".into(),
                        )))
                    }
                }
            }
            'T' => {
                // 9T <name> <layer> <x> <y>
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [name, layer, x, y] = parts.as_slice() else {
                    return Err(self.err(CifErrorKind::MalformedExtension(
                        "9T wants: name layer x y".into(),
                    )));
                };
                let (x, y) = (parse_int(x, self)?, parse_int(y, self)?);
                let layer = self.layout.intern_layer(layer);
                let Some((sym, ..)) = &mut self.current else {
                    return Err(self.err(CifErrorKind::DeviceOutsideSymbol));
                };
                match &mut sym.device {
                    Some(d) => d.terminals.push(Terminal {
                        name: name.to_string(),
                        layer,
                        position: Point::new(x, y),
                    }),
                    None => {
                        return Err(self.err(CifErrorKind::MalformedExtension(
                            "9T must follow a 9D device declaration".into(),
                        )))
                    }
                }
            }
            'L' => {
                // 9L <net> <layer> <x> <y> — top-level net label.
                let parts: Vec<&str> = rest.split_whitespace().collect();
                let [net, layer, x, y] = parts.as_slice() else {
                    return Err(self.err(CifErrorKind::MalformedExtension(
                        "9L wants: net layer x y".into(),
                    )));
                };
                let (x, y) = (parse_int(x, self)?, parse_int(y, self)?);
                let layer = self.layout.intern_layer(layer);
                self.layout.push_label(NetLabel {
                    net: net.to_string(),
                    layer,
                    position: Point::new(x, y),
                });
            }
            other => {
                return Err(self.err(CifErrorKind::MalformedExtension(format!(
                    "unknown 9{other} extension"
                ))));
            }
        }
        Ok(())
    }

    fn push_item(&mut self, item: Item) {
        match &mut self.current {
            Some((sym, ..)) => sym.items.push(item),
            None => self.layout.push_top(item),
        }
    }

    /// Rewrites `Call.target` from raw CIF ids to [`SymbolId`]s.
    fn resolve_calls(&mut self) -> Result<(), CifError> {
        let map: Vec<(u32, SymbolId)> = self
            .layout
            .symbols()
            .iter()
            .enumerate()
            .map(|(i, s)| (s.cif_id, SymbolId(i as u32)))
            .collect();
        let lookup = |cif: u32| -> Result<SymbolId, CifError> {
            map.iter()
                .find(|(c, _)| *c == cif)
                .map(|(_, id)| *id)
                .ok_or(CifError::new(0, CifErrorKind::UndefinedSymbol(cif)))
        };
        let n = self.layout.symbols().len();
        for i in 0..n {
            let sym = self.layout.symbol_mut(SymbolId(i as u32));
            for item in &mut sym.items {
                if let Item::Call(c) = item {
                    c.target = lookup(c.target.0)?;
                }
            }
        }
        // Top-level items: rebuild in place.
        let mut top: Vec<Item> = self.layout.top_items().to_vec();
        for item in &mut top {
            if let Item::Call(c) = item {
                c.target = lookup(c.target.0)?;
            }
        }
        // Replace the top list.
        let layout = std::mem::take(&mut self.layout);
        self.layout = rebuild_with_top(layout, top);
        Ok(())
    }
}

fn rebuild_with_top(layout: Layout, top: Vec<Item>) -> Layout {
    let mut out = Layout::new();
    for name in layout.layer_names() {
        out.intern_layer(name);
    }
    for sym in layout.symbols() {
        out.add_symbol(sym.clone());
    }
    for item in top {
        out.push_top(item);
    }
    for label in layout.labels() {
        out.push_label(label.clone());
    }
    out
}

fn parse_int(s: &str, p: &Parser) -> Result<i64, CifError> {
    s.parse::<i64>().map_err(|_| {
        p.err(CifErrorKind::ExpectedNumber(format!(
            "extension field {s:?}"
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_box() {
        let l = parse("L NM; B 40 20 20,10; E").unwrap();
        assert_eq!(l.top_items().len(), 1);
        let Item::Element(e) = &l.top_items()[0] else {
            panic!("expected element")
        };
        assert_eq!(e.shape.bbox(), Rect::new(0, 0, 40, 20));
        assert_eq!(l.layer_name(e.layer), "NM");
    }

    #[test]
    fn box_with_direction() {
        let l = parse("L NM; B 40 20 0 0 0 1; E").unwrap();
        let Item::Element(e) = &l.top_items()[0] else {
            panic!()
        };
        // Rotated 90°: length axis vertical.
        assert_eq!(e.shape.bbox(), Rect::new(-10, -20, 10, 20));
    }

    #[test]
    fn wire_and_polygon() {
        let l = parse("L NP; W 20 0 0 100 0 100 100; P 0 0 50 0 0 50; E").unwrap();
        assert_eq!(l.top_items().len(), 2);
        let Item::Element(w) = &l.top_items()[0] else {
            panic!()
        };
        assert!(matches!(w.shape, Shape::Wire(_)));
        let Item::Element(p) = &l.top_items()[1] else {
            panic!()
        };
        assert!(matches!(p.shape, Shape::Polygon(_)));
    }

    #[test]
    fn symbol_definition_and_call() {
        let l = parse("DS 1 1 1; 9 cell; L ND; B 20 20 10 10; DF; C 1 T 100 0; E").unwrap();
        assert_eq!(l.symbols().len(), 1);
        assert_eq!(l.symbol_by_name("cell"), Some(SymbolId(0)));
        let Item::Call(c) = &l.top_items()[0] else {
            panic!()
        };
        assert_eq!(c.target, SymbolId(0));
        assert_eq!(c.transform.offset, Vector::new(100, 0));
        assert_eq!(c.name, "i0");
    }

    #[test]
    fn ds_scale_applies() {
        // Scale 2/1 doubles all coordinates in the symbol.
        let l = parse("DS 1 2 1; L ND; B 10 10 5 5; DF; C 1; E").unwrap();
        let sym = l.symbol(SymbolId(0));
        let e = sym.elements().next().unwrap();
        assert_eq!(e.shape.bbox(), Rect::new(0, 0, 20, 20));
    }

    #[test]
    fn transform_order_mirror_then_translate() {
        // CIF: ops apply left to right: MX then T.
        let l = parse("DS 1 1 1; L ND; B 2 2 5 0; DF; C 1 MX T 100 0; E").unwrap();
        let Item::Call(c) = &l.top_items()[0] else {
            panic!()
        };
        // Point (5,0) -> MX -> (-5,0) -> T -> (95,0).
        assert_eq!(c.transform.apply_point(Point::new(5, 0)), Point::new(95, 0));
    }

    #[test]
    fn rotation_must_be_manhattan() {
        let err = parse("DS 1 1 1; DF; C 1 R 1 1; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::NonManhattanRotation(1, 1)));
    }

    #[test]
    fn forward_reference_resolved() {
        let l = parse("C 2 T 0 0; DS 2 1 1; L ND; B 2 2 0 0; DF; E").unwrap();
        let Item::Call(c) = &l.top_items()[0] else {
            panic!()
        };
        assert_eq!(c.target, SymbolId(0));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let err = parse("C 42; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::UndefinedSymbol(42)));
    }

    #[test]
    fn duplicate_symbol_rejected() {
        let err = parse("DS 1; DF; DS 1; DF; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::DuplicateSymbol(1)));
    }

    #[test]
    fn nested_ds_rejected() {
        let err = parse("DS 1; DS 2; DF; DF; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::NestedDefinition));
    }

    #[test]
    fn unclosed_ds_rejected() {
        let err = parse("DS 1; L ND; B 2 2 0 0; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::UnclosedDefinition(1)));
    }

    #[test]
    fn recursion_rejected() {
        let err = parse("DS 1; C 2; DF; DS 2; C 1; DF; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::RecursiveSymbol(_)));
    }

    #[test]
    fn net_extension_binds_next_element() {
        let l = parse("L NM; 9N VDD; B 40 20 20 10; B 40 20 20 50; E").unwrap();
        let Item::Element(e1) = &l.top_items()[0] else {
            panic!()
        };
        let Item::Element(e2) = &l.top_items()[1] else {
            panic!()
        };
        assert_eq!(e1.net.as_deref(), Some("VDD"));
        assert_eq!(e2.net, None);
    }

    #[test]
    fn device_declaration() {
        let l = parse(
            "DS 1; 9 tr; 9D NMOS_ENH; 9T G NP 10 10; 9T S ND 0 10; 9C; L NP; B 20 60 10 30; DF; E",
        )
        .unwrap();
        let sym = l.symbol(SymbolId(0));
        let dev = sym.device.as_ref().unwrap();
        assert_eq!(dev.device_type, "NMOS_ENH");
        assert!(dev.checked);
        assert_eq!(dev.terminals.len(), 2);
        assert_eq!(dev.terminals[0].name, "G");
        assert_eq!(dev.terminals[0].position, Point::new(10, 10));
    }

    #[test]
    fn device_outside_symbol_rejected() {
        let err = parse("9D NMOS;").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::DeviceOutsideSymbol));
    }

    #[test]
    fn label_extension() {
        let l = parse("9L VDD NM 50 100; E").unwrap();
        assert_eq!(l.labels().len(), 1);
        assert_eq!(l.labels()[0].net, "VDD");
        assert_eq!(l.labels()[0].position, Point::new(50, 100));
    }

    #[test]
    fn element_without_layer_rejected() {
        let err = parse("B 2 2 0 0; E").unwrap_err();
        assert!(matches!(err.kind, CifErrorKind::NoCurrentLayer));
    }

    #[test]
    fn text_after_e_ignored() {
        let l = parse("L NM; B 2 2 0 0; E this is trailing junk !!!").unwrap();
        assert_eq!(l.top_items().len(), 1);
    }

    #[test]
    fn comments_anywhere() {
        let l = parse("(header) L NM; (mid) B 2 2 0 0; (tail) E").unwrap();
        assert_eq!(l.top_items().len(), 1);
    }

    #[test]
    fn instance_names_sequential_per_scope() {
        let l = parse("DS 1; DF; DS 2; C 1; C 1; DF; C 2; C 2; C 2; E").unwrap();
        let parent = l.symbol(SymbolId(1));
        let names: Vec<&str> = parent.calls().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["i0", "i1"]);
        let tops: Vec<&str> = l
            .top_items()
            .iter()
            .filter_map(|i| match i {
                Item::Call(c) => Some(c.name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(tops, vec!["i0", "i1", "i2"]);
    }
}
