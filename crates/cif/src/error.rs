//! Errors for CIF parsing and layout validation.

use std::fmt;

/// An error produced while lexing, parsing, or validating extended CIF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CifError {
    /// 1-based line number where the problem was detected (0 = whole file).
    pub line: usize,
    /// What went wrong.
    pub kind: CifErrorKind,
}

/// The kinds of CIF errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CifErrorKind {
    /// An unexpected character in the input stream.
    UnexpectedChar(char),
    /// A number was expected.
    ExpectedNumber(String),
    /// A semicolon was expected before the next command.
    ExpectedSemicolon(String),
    /// An unknown command letter.
    UnknownCommand(char),
    /// `DS` nested inside another `DS`.
    NestedDefinition,
    /// `DF` without a matching `DS`.
    UnmatchedEnd,
    /// A `DS` was never closed by `DF`.
    UnclosedDefinition(u32),
    /// A symbol id was defined twice.
    DuplicateSymbol(u32),
    /// A call references an undefined symbol id.
    UndefinedSymbol(u32),
    /// Calls form a cycle through the named symbol id.
    RecursiveSymbol(u32),
    /// A rotation direction that is not one of the four axis directions.
    NonManhattanRotation(i64, i64),
    /// A wire/polygon had too few points, a bad width, etc.
    MalformedShape(String),
    /// A `9…` extension command was malformed.
    MalformedExtension(String),
    /// A device declaration (`9D`) outside a symbol definition.
    DeviceOutsideSymbol,
    /// Unclosed comment parenthesis.
    UnclosedComment,
    /// Layer command with no layer name.
    MissingLayer,
    /// An element appeared before any `L` layer selection.
    NoCurrentLayer,
}

impl CifError {
    pub(crate) fn new(line: usize, kind: CifErrorKind) -> Self {
        CifError { line, kind }
    }
}

impl fmt::Display for CifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.kind)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

impl fmt::Display for CifErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CifErrorKind::*;
        match self {
            UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ExpectedNumber(ctx) => write!(f, "expected a number in {ctx}"),
            ExpectedSemicolon(ctx) => write!(f, "expected ';' after {ctx}"),
            UnknownCommand(c) => write!(f, "unknown command {c:?}"),
            NestedDefinition => write!(f, "DS inside DS: symbol definitions cannot nest"),
            UnmatchedEnd => write!(f, "DF without matching DS"),
            UnclosedDefinition(id) => write!(f, "symbol {id} never closed with DF"),
            DuplicateSymbol(id) => write!(f, "symbol {id} defined twice"),
            UndefinedSymbol(id) => write!(f, "call references undefined symbol {id}"),
            RecursiveSymbol(id) => write!(f, "recursive calls through symbol {id}"),
            NonManhattanRotation(a, b) => write!(
                f,
                "rotation direction ({a}, {b}) is not an axis direction (DIIC layouts are Manhattan)"
            ),
            MalformedShape(msg) => write!(f, "malformed shape: {msg}"),
            MalformedExtension(msg) => write!(f, "malformed extension: {msg}"),
            DeviceOutsideSymbol => write!(f, "9D device declaration outside a symbol definition"),
            UnclosedComment => write!(f, "unclosed comment"),
            MissingLayer => write!(f, "L command with no layer name"),
            NoCurrentLayer => write!(f, "element before any L layer selection"),
        }
    }
}

impl std::error::Error for CifError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = CifError::new(42, CifErrorKind::UnknownCommand('Q'));
        assert_eq!(e.to_string(), "line 42: unknown command 'Q'");
        let e0 = CifError::new(0, CifErrorKind::UndefinedSymbol(7));
        assert_eq!(e0.to_string(), "call references undefined symbol 7");
    }
}
