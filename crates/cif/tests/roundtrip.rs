//! Property tests: random layouts survive the write→parse round trip, and
//! hierarchy statistics agree with brute-force flattening.

use diic_cif::{flatten, parse, to_cif};
use proptest::prelude::*;

/// Generates a random extended-CIF text with 1–3 symbols and calls.
fn arb_cif() -> impl Strategy<Value = String> {
    let coord = -5000i64..5000;
    let dim = (250i64..2000).prop_map(|v| (v / 50) * 50);
    let boxes = proptest::collection::vec(
        (dim.clone(), dim, coord.clone(), coord.clone(), 0usize..3),
        1..5,
    );
    let calls = proptest::collection::vec((0u32..3, coord.clone(), coord, 0usize..8), 0..4);
    (boxes, calls).prop_map(|(boxes, calls)| {
        let layers = ["NM", "NP", "ND"];
        let orients = [
            "",
            "M X",
            "M Y",
            "R 0 1",
            "R -1 0",
            "R 0 -1",
            "M X R 0 1",
            "M X R 0 -1",
        ];
        let mut s = String::new();
        // Three symbols, each holding a subset of the boxes.
        for sym in 0..3u32 {
            s.push_str(&format!("DS {} 1 1;\n9 sym{};\n", sym + 1, sym));
            for (i, (l, w, x, y, layer)) in boxes.iter().enumerate() {
                if i % 3 == sym as usize {
                    s.push_str(&format!("L {};\n", layers[*layer]));
                    if i % 2 == 0 {
                        s.push_str(&format!("9N n{i};\n"));
                    }
                    s.push_str(&format!("B {l} {w} {x} {y};\n"));
                }
            }
            s.push_str("DF;\n");
        }
        for (target, x, y, orient) in &calls {
            s.push_str(&format!(
                "C {} {} T {} {};\n",
                target + 1,
                orients[*orient],
                x,
                y
            ));
        }
        s.push_str("E\n");
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_roundtrip_preserves_flat_view(cif in arb_cif()) {
        let a = parse(&cif).unwrap();
        let text = to_cif(&a);
        let b = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n{text}"));
        let fa = flatten(&a);
        let fb = flatten(&b);
        prop_assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(fb.iter()) {
            prop_assert_eq!(&x.shape, &y.shape);
            prop_assert_eq!(&x.net, &y.net);
            prop_assert_eq!(a.layer_name(x.layer), b.layer_name(y.layer));
        }
    }

    #[test]
    fn stats_flat_count_matches_flatten(cif in arb_cif()) {
        let layout = parse(&cif).unwrap();
        let stats = diic_cif::hierarchy::stats(&layout);
        let flat = flatten(&layout);
        prop_assert_eq!(stats.flat_element_count as usize, flat.len());
        // Chip bbox covers every flattened element.
        if let Some(bbox) = stats.chip_bbox {
            for e in &flat {
                let b = e.shape.bbox();
                prop_assert!(bbox.contains_rect(&b), "{b} outside {bbox}");
            }
        } else {
            prop_assert!(flat.is_empty());
        }
    }

    #[test]
    fn transforms_preserve_area(cif in arb_cif()) {
        let layout = parse(&cif).unwrap();
        // Every flattened box must have the same dimensions as some source
        // box (Manhattan transforms preserve side lengths up to swap).
        let mut source_dims: Vec<(i64, i64)> = Vec::new();
        for sym in layout.symbols() {
            for e in sym.elements() {
                let b = e.shape.bbox();
                source_dims.push((b.width().min(b.height()), b.width().max(b.height())));
            }
        }
        for e in flatten(&layout) {
            let b = e.shape.bbox();
            let dims = (b.width().min(b.height()), b.width().max(b.height()));
            prop_assert!(source_dims.contains(&dims));
        }
    }
}
