//! Property tests for net-list construction and comparison.

use diic_netlist::{compare_by_structure, NetlistBuilder, UnionFind};
use diic_tech::DeviceClass;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_find_partitions(merges in proptest::collection::vec((0u32..20, 0u32..20), 0..40)) {
        let mut uf = UnionFind::new();
        for _ in 0..20 {
            uf.make();
        }
        for &(a, b) in &merges {
            uf.union(a, b);
        }
        // Reflexive, symmetric, transitive via representative equality.
        for i in 0..20 {
            prop_assert!(uf.same(i, i));
        }
        for &(a, b) in &merges {
            prop_assert!(uf.same(a, b));
        }
        // Set count + singletons consistency.
        let sets = uf.set_count();
        prop_assert!(sets <= 20);
        prop_assert!(sets >= 1);
    }

    #[test]
    fn connect_is_order_independent(pairs in proptest::collection::vec((0u8..12, 0u8..12), 1..20)) {
        let build = |order: &[(u8, u8)]| {
            let mut b = NetlistBuilder::new();
            for i in 0..12u8 {
                b.node(&format!("n{i}"));
            }
            for &(x, y) in order {
                b.connect(&format!("n{x}"), &format!("n{y}"));
            }
            b.finish()
        };
        let forward = build(&pairs);
        let mut reversed = pairs.clone();
        reversed.reverse();
        let backward = build(&reversed);
        prop_assert_eq!(forward.net_count(), backward.net_count());
        // Same partitions: identical alias groupings.
        for net in forward.nets() {
            let id = backward.net_by_name(&net.name).unwrap();
            let mut a = net.aliases.clone();
            let mut b = backward.net(id).aliases.clone();
            a.sort();
            b.sort();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn structural_compare_is_reflexive(n in 1usize..10, seed in 0u64..1000) {
        // A pseudo-random netlist must always match itself.
        let mut b1 = NetlistBuilder::new();
        let mut b2 = NetlistBuilder::new();
        for i in 0..n {
            let g = format!("g{}", (seed as usize + i * 7) % n);
            let d = format!("d{}", (seed as usize + i * 13) % n);
            for b in [&mut b1, &mut b2] {
                b.add_device(
                    &format!("t{i}"),
                    "NMOS_ENH",
                    DeviceClass::MosEnhancement,
                    &[("G", g.as_str()), ("S", "GND"), ("D", d.as_str())],
                );
            }
        }
        let a = b1.finish();
        let b = b2.finish();
        let d = compare_by_structure(&a, &b, 10);
        prop_assert!(d.matched, "{:?}", d.messages);
    }

    #[test]
    fn structural_compare_detects_retyping(n in 2usize..8) {
        // Changing one device's type must break the match.
        let build = |bad: Option<usize>| {
            let mut b = NetlistBuilder::new();
            for i in 0..n {
                let ty = if bad == Some(i) { "NMOS_DEP" } else { "NMOS_ENH" };
                let class = if bad == Some(i) {
                    DeviceClass::MosDepletion
                } else {
                    DeviceClass::MosEnhancement
                };
                b.add_device(
                    &format!("t{i}"),
                    ty,
                    class,
                    &[
                        ("G", format!("n{i}").as_str()),
                        ("S", "GND"),
                        ("D", format!("n{}", i + 1).as_str()),
                    ],
                );
            }
            b.finish()
        };
        let good = build(None);
        let bad = build(Some(0));
        let d = compare_by_structure(&good, &bad, 10);
        prop_assert!(!d.matched);
    }

    #[test]
    fn canonical_name_is_shortest(aliases in proptest::collection::vec("[a-z]{1,8}", 1..6)) {
        let mut b = NetlistBuilder::new();
        for w in aliases.windows(2) {
            b.connect(&w[0], &w[1]);
        }
        if aliases.len() == 1 {
            b.node(&aliases[0]);
        }
        let n = b.finish();
        // All aliases collapse into one net whose canonical name is the
        // shortest (ties broken lexicographically).
        let mut unique: Vec<String> = aliases.clone();
        unique.sort();
        unique.dedup();
        let expect = unique
            .iter()
            .min_by_key(|s| (s.len(), s.as_str()))
            .unwrap();
        prop_assert_eq!(n.net_count(), 1);
        prop_assert_eq!(&n.nets()[0].name, expect);
    }
}
