//! Non-geometric construction rules (the paper's fourth rule category).
//!
//! "1.) A net must have at least two 'devices' on it.
//!  2.) Power and ground must not be shorted.
//!  3.) A 'bus' may not connect to power or ground.
//!  4.) A depletion device may not connect to ground."

use crate::graph::{NetId, Netlist};
use diic_tech::{DeviceClass, Technology};

/// Which of the paper's four composition rules fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErcRule {
    /// A net with fewer than two device terminals.
    DanglingNet,
    /// Power and ground on the same net.
    PowerGroundShort,
    /// A bus net connected to power or ground.
    BusToRail,
    /// A depletion device terminal on a ground net.
    DepletionToGround,
}

impl std::fmt::Display for ErcRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErcRule::DanglingNet => write!(f, "net must have at least two devices on it"),
            ErcRule::PowerGroundShort => write!(f, "power and ground must not be shorted"),
            ErcRule::BusToRail => write!(f, "a bus may not connect to power or ground"),
            ErcRule::DepletionToGround => write!(f, "a depletion device may not connect to ground"),
        }
    }
}

/// An electrical-rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErcViolation {
    /// The rule that fired.
    pub rule: ErcRule,
    /// The offending net.
    pub net: NetId,
    /// Human-readable details (net name, aliases involved).
    pub detail: String,
}

impl std::fmt::Display for ErcViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.rule, self.detail)
    }
}

/// Checks the four composition rules against a net list.
///
/// Net classification (power / ground / bus) comes from the technology's
/// naming configuration and considers **all aliases** of a net — a net is a
/// power net if any alias names it so.
pub fn check_erc(netlist: &Netlist, tech: &Technology) -> Vec<ErcViolation> {
    let mut out = Vec::new();
    // Auto net keys (checker-internal `#…` placeholders for undeclared
    // geometry) are not designer names and never classify a net — only
    // declared aliases are consulted. Besides being the right
    // semantics (an auto key that happens to embed an `IO_`-named
    // instance path must not exempt a dangling net), this skips the
    // bulk of a big chip's aliases.
    fn named(net: &crate::graph::Net) -> impl Iterator<Item = &str> {
        net.aliases
            .iter()
            .filter(|a| !a.starts_with('#'))
            .map(|a| local_name(a))
    }
    for (i, net) in netlist.nets().iter().enumerate() {
        let id = NetId(i as u32);
        let is_power = named(net).any(|a| tech.is_power(a));
        let is_ground = named(net).any(|a| tech.is_ground(a));
        let bus_alias = named(net).find(|a| tech.is_bus(a));

        // Rule 2: power/ground short.
        if is_power && is_ground {
            out.push(ErcViolation {
                rule: ErcRule::PowerGroundShort,
                net: id,
                detail: format!("net '{}' carries both power and ground aliases", net.name),
            });
        }

        // Rule 3: bus to rail.
        if let Some(bus) = bus_alias {
            if is_power || is_ground {
                out.push(ErcViolation {
                    rule: ErcRule::BusToRail,
                    net: id,
                    detail: format!(
                        "bus '{bus}' is connected to {} net '{}'",
                        if is_power { "power" } else { "ground" },
                        net.name
                    ),
                });
            }
        }

        // Rule 1: dangling net. Power/ground rails and chip I/O ports are
        // exempt — they connect off chip; the paper's rule is about
        // internal signal nets.
        let is_io = named(net).any(|a| tech.is_io(a));
        if !is_power && !is_ground && !is_io && net.terminals.len() < 2 {
            out.push(ErcViolation {
                rule: ErcRule::DanglingNet,
                net: id,
                detail: format!(
                    "net '{}' has {} device terminal(s)",
                    net.name,
                    net.terminals.len()
                ),
            });
        }

        // Rule 4: depletion device to ground.
        if is_ground {
            for (dev_id, term) in &net.terminals {
                let dev = netlist.device(*dev_id);
                if dev.class == DeviceClass::MosDepletion {
                    out.push(ErcViolation {
                        rule: ErcRule::DepletionToGround,
                        net: id,
                        detail: format!(
                            "depletion device '{}' terminal {} on ground net '{}'",
                            dev.name, term, net.name
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The local (last) component of a dot-notation alias: `a.b.VDD` → `VDD`.
fn local_name(alias: &str) -> &str {
    alias.rsplit('.').next().unwrap_or(alias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetlistBuilder;
    use diic_tech::nmos::nmos_technology;

    fn rules_fired(n: &Netlist) -> Vec<ErcRule> {
        let tech = nmos_technology();
        check_erc(n, &tech).into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_inverter_passes() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pu",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "VDD")],
        );
        b.add_device(
            "pd",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "in"), ("S", "GND"), ("D", "out")],
        );
        // `in` would dangle with one terminal; feed it from another device.
        b.add_device(
            "drv",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "x"), ("S", "y"), ("D", "in")],
        );
        b.add_device(
            "load",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "y"), ("S", "x"), ("D", "q")],
        );
        b.add_device(
            "load2",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "q"), ("S", "out"), ("D", "VDD")],
        );
        let n = b.finish();
        assert!(rules_fired(&n).is_empty(), "got {:?}", rules_fired(&n));
    }

    #[test]
    fn dangling_net_detected() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "t",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "floats"), ("S", "GND"), ("D", "VDD")],
        );
        let fired = rules_fired(&b.finish());
        assert!(fired.contains(&ErcRule::DanglingNet));
    }

    #[test]
    fn power_ground_short_detected() {
        let mut b = NetlistBuilder::new();
        b.connect("VDD", "GND");
        let fired = rules_fired(&b.finish());
        assert!(fired.contains(&ErcRule::PowerGroundShort));
    }

    #[test]
    fn hierarchical_power_alias_detected() {
        // A deep instance's local VDD merged with top-level GND.
        let mut b = NetlistBuilder::new();
        b.connect("i1.i3.VDD", "GND");
        let fired = rules_fired(&b.finish());
        assert!(fired.contains(&ErcRule::PowerGroundShort));
    }

    #[test]
    fn bus_to_rail_detected() {
        let mut b = NetlistBuilder::new();
        b.connect("BUS_DATA0", "VDD");
        let fired = rules_fired(&b.finish());
        assert!(fired.contains(&ErcRule::BusToRail));
        let mut b2 = NetlistBuilder::new();
        b2.connect("BUS_DATA0", "GND");
        assert!(rules_fired(&b2.finish()).contains(&ErcRule::BusToRail));
    }

    #[test]
    fn depletion_to_ground_detected() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pu",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "GND")],
        );
        let fired = rules_fired(&b.finish());
        assert!(fired.contains(&ErcRule::DepletionToGround));
    }

    #[test]
    fn enhancement_to_ground_is_fine() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pd",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "a"), ("S", "GND"), ("D", "b")],
        );
        b.add_device(
            "pd2",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "b"), ("S", "GND"), ("D", "a")],
        );
        let fired = rules_fired(&b.finish());
        assert!(!fired.contains(&ErcRule::DepletionToGround));
    }

    #[test]
    fn rails_exempt_from_dangling() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pu",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "a"), ("S", "a"), ("D", "VDD")],
        );
        let fired = rules_fired(&b.finish());
        assert!(!fired.contains(&ErcRule::DanglingNet));
        // VDD with one terminal must not fire DanglingNet:
        let tech = nmos_technology();
        let n = {
            let mut b = NetlistBuilder::new();
            b.add_device(
                "pu",
                "NMOS_ENH",
                DeviceClass::MosEnhancement,
                &[("G", "a"), ("S", "a"), ("D", "VDD")],
            );
            b.finish()
        };
        let v = check_erc(&n, &tech);
        assert!(v
            .iter()
            .all(|v| !(v.rule == ErcRule::DanglingNet && n.net(v.net).name == "VDD")));
    }
}
