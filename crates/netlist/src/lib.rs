//! # diic-netlist — hierarchical net lists and electrical rules for DIIC
//!
//! The paper: "each element in the design is assigned a unique net
//! identifier using a dot notation to reference elements in an instance
//! from a higher level in the hierarchy (e.g. `a.b` refers to element `b`
//! in the instance `a`). With this hierarchical net list available, it is
//! now possible to check electrical construction rules or to check the net
//! list against an input net list for consistency."
//!
//! This crate provides:
//!
//! * [`UnionFind`] — the merge structure under net-identifier unification;
//! * [`NetlistBuilder`]/[`Netlist`] — nets (with dot-notation aliases),
//!   devices and terminals;
//! * [`compare`] — net-list consistency checking (extracted vs intended),
//!   both name-based and structural (iterative refinement);
//! * [`erc`] — the paper's non-geometric construction rules:
//!   1. a net must have at least two "devices" on it,
//!   2. power and ground must not be shorted,
//!   3. a "bus" may not connect to power or ground,
//!   4. a depletion device may not connect to ground.

pub mod compare;
pub mod erc;
pub mod graph;
pub mod unionfind;

pub use compare::{compare_by_structure, NetlistDiff};
pub use erc::{check_erc, ErcRule, ErcViolation};
pub use graph::{
    assemble_netlist, AssembleDevice, Device, DeviceId, Net, NetId, Netlist, NetlistBuilder,
};
pub use unionfind::UnionFind;
