//! Union-find (disjoint sets) with path compression and union by rank.

/// A classic disjoint-set forest over `u32` node ids.
///
/// # Example
///
/// ```
/// use diic_netlist::UnionFind;
/// let mut uf = UnionFind::new();
/// let a = uf.make();
/// let b = uf.make();
/// let c = uf.make();
/// uf.union(a, b);
/// assert!(uf.same(a, b));
/// assert!(!uf.same(a, c));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        UnionFind::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if no nodes exist.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Creates a new singleton node and returns its id.
    pub fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Finds the canonical representative of `x` (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x` was not created by [`UnionFind::make`].
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new root.
    pub fn union(&mut self, a: u32, b: u32) -> u32 {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        hi
    }

    /// True if `a` and `b` are in the same set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets.
    pub fn set_count(&mut self) -> usize {
        let n = self.parent.len();
        (0..n as u32).filter(|&i| self.find(i) == i).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_distinct() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..5).map(|_| uf.make()).collect();
        assert_eq!(uf.len(), 5);
        assert_eq!(uf.set_count(), 5);
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i + 1) {
                assert!(!uf.same(a, b));
            }
        }
    }

    #[test]
    fn chain_union() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..10).map(|_| uf.make()).collect();
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        assert_eq!(uf.set_count(), 1);
        assert!(uf.same(ids[0], ids[9]));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make();
        let b = uf.make();
        let r1 = uf.union(a, b);
        let r2 = uf.union(a, b);
        assert_eq!(r1, r2);
        assert_eq!(uf.set_count(), 1);
    }

    #[test]
    fn two_islands() {
        let mut uf = UnionFind::new();
        let ids: Vec<u32> = (0..6).map(|_| uf.make()).collect();
        uf.union(ids[0], ids[1]);
        uf.union(ids[1], ids[2]);
        uf.union(ids[3], ids[4]);
        assert_eq!(uf.set_count(), 3); // {0,1,2} {3,4} {5}
        assert!(uf.same(ids[0], ids[2]));
        assert!(!uf.same(ids[2], ids[3]));
    }
}
