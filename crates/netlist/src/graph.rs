//! Net-list model: nets, devices, terminals.

use crate::unionfind::UnionFind;
use diic_tech::DeviceClass;
use std::collections::HashMap;

/// Identifier of a net in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a device in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// A net: a canonical name, all its aliases (dot-notation identifiers that
/// were merged into it), and the device terminals on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Canonical name (the lexicographically smallest alias, which favours
    /// short top-level names like `VDD` over deep `a.b.c` paths).
    pub name: String,
    /// All identifiers merged into this net, sorted.
    pub aliases: Vec<String>,
    /// `(device, terminal-name)` pairs attached to this net.
    pub terminals: Vec<(DeviceId, String)>,
}

/// A device instance with its typed terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Instance path (dot notation).
    pub name: String,
    /// The `9D` type name (e.g. `NMOS_ENH`).
    pub device_type: String,
    /// Electrical class.
    pub class: DeviceClass,
    /// `(terminal-name, net)` pairs.
    pub terminals: Vec<(String, NetId)>,
}

/// An extracted or intended net list.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Netlist {
    nets: Vec<Net>,
    devices: Vec<Device>,
    by_name: HashMap<String, NetId>,
}

impl Netlist {
    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// A device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Finds the net that has `name` among its aliases.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

/// A device staged in the builder: path, type, class, and terminal
/// `(name, interned net key)` pairs.
type StagedDevice = (String, String, DeviceClass, Vec<(String, u32)>);

/// Builder: intern net keys, merge them as connections are discovered, add
/// devices, then [`NetlistBuilder::finish`] into a canonical [`Netlist`].
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    uf: UnionFind,
    keys: HashMap<String, u32>,
    names: Vec<String>,
    devices: Vec<StagedDevice>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Interns a net identifier, returning its node.
    pub fn node(&mut self, key: &str) -> u32 {
        if let Some(&n) = self.keys.get(key) {
            return n;
        }
        let n = self.uf.make();
        debug_assert_eq!(n as usize, self.names.len());
        self.keys.insert(key.to_string(), n);
        self.names.push(key.to_string());
        n
    }

    /// Records that two net identifiers are connected (merges their nets).
    pub fn connect(&mut self, a: &str, b: &str) {
        let na = self.node(a);
        let nb = self.node(b);
        self.uf.union(na, nb);
    }

    /// True if two identifiers are currently on the same net.
    pub fn connected(&mut self, a: &str, b: &str) -> bool {
        let na = self.node(a);
        let nb = self.node(b);
        self.uf.same(na, nb)
    }

    /// Adds a device with `(terminal-name, net-key)` pairs.
    pub fn add_device(
        &mut self,
        name: &str,
        device_type: &str,
        class: DeviceClass,
        terminals: &[(&str, &str)],
    ) {
        let terms: Vec<(String, u32)> = terminals
            .iter()
            .map(|(t, key)| (t.to_string(), self.node(key)))
            .collect();
        self.devices
            .push((name.to_string(), device_type.to_string(), class, terms));
    }

    /// Produces the canonical net list.
    pub fn finish(mut self) -> Netlist {
        // Group aliases by root.
        let mut groups: HashMap<u32, Vec<String>> = HashMap::new();
        for (name, &node) in &self.keys {
            let root = self.uf.find(node);
            groups.entry(root).or_default().push(name.clone());
        }
        // Deterministic net order: by canonical (min) alias.
        let mut roots: Vec<(String, u32, Vec<String>)> = groups
            .into_iter()
            .map(|(root, mut aliases)| {
                aliases.sort_by(|a, b| (a.len(), a.as_str()).cmp(&(b.len(), b.as_str())));
                (aliases[0].clone(), root, aliases)
            })
            .collect();
        roots.sort_by(|a, b| a.0.cmp(&b.0));

        let mut root_to_net: HashMap<u32, NetId> = HashMap::new();
        let mut nets: Vec<Net> = Vec::with_capacity(roots.len());
        let mut by_name: HashMap<String, NetId> = HashMap::new();
        for (canon, root, mut aliases) in roots {
            let id = NetId(nets.len() as u32);
            aliases.sort();
            for a in &aliases {
                by_name.insert(a.clone(), id);
            }
            root_to_net.insert(root, id);
            nets.push(Net {
                name: canon,
                aliases,
                terminals: Vec::new(),
            });
        }

        let mut devices: Vec<Device> = Vec::with_capacity(self.devices.len());
        for (di, (name, device_type, class, terms)) in self.devices.clone().into_iter().enumerate()
        {
            let mut terminals = Vec::with_capacity(terms.len());
            for (tname, node) in terms {
                let net = root_to_net[&self.uf.find(node)];
                nets[net.0 as usize]
                    .terminals
                    .push((DeviceId(di as u32), tname.clone()));
                terminals.push((tname, net));
            }
            devices.push(Device {
                name,
                device_type,
                class,
                terminals,
            });
        }

        Netlist {
            nets,
            devices,
            by_name,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pullup",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "VDD")],
        );
        b.add_device(
            "pulldown",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "in"), ("S", "GND"), ("D", "out")],
        );
        b.finish()
    }

    #[test]
    fn build_inverter() {
        let n = inverter_netlist();
        assert_eq!(n.device_count(), 2);
        assert_eq!(n.net_count(), 4); // VDD, GND, in, out
        let out = n.net_by_name("out").unwrap();
        assert_eq!(n.net(out).terminals.len(), 3);
    }

    #[test]
    fn connect_merges_aliases() {
        let mut b = NetlistBuilder::new();
        b.connect("a.out", "b.in");
        b.connect("b.in", "x");
        let n = b.finish();
        assert_eq!(n.net_count(), 1);
        let id = n.net_by_name("x").unwrap();
        assert_eq!(n.net_by_name("a.out"), Some(id));
        assert_eq!(n.net(id).name, "x"); // shortest alias wins
        assert_eq!(n.net(id).aliases.len(), 3);
    }

    #[test]
    fn canonical_name_prefers_short_toplevel() {
        let mut b = NetlistBuilder::new();
        b.connect("i3.i2.vdd", "VDD");
        let n = b.finish();
        assert_eq!(n.net(NetId(0)).name, "VDD");
    }

    #[test]
    fn device_terminals_resolve_through_merges() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "t1",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "g1"), ("S", "s1"), ("D", "d1")],
        );
        b.connect("d1", "wire");
        b.connect("wire", "g2");
        b.add_device(
            "t2",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "g2"), ("S", "s2"), ("D", "d2")],
        );
        let n = b.finish();
        let d1 = n.net_by_name("d1").unwrap();
        let g2 = n.net_by_name("g2").unwrap();
        assert_eq!(d1, g2);
        // Both devices appear on the shared net.
        let net = n.net(d1);
        assert_eq!(net.terminals.len(), 2);
    }

    #[test]
    fn deterministic_order() {
        let a = inverter_netlist();
        let b = inverter_netlist();
        assert_eq!(a, b);
    }
}
