//! Net-list model: nets, devices, terminals.

use crate::unionfind::UnionFind;
use diic_tech::DeviceClass;
use std::collections::HashMap;

/// Identifier of a net in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

/// Identifier of a device in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// A net: a canonical name, all its aliases (dot-notation identifiers that
/// were merged into it), and the device terminals on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    /// Canonical name (the lexicographically smallest alias, which favours
    /// short top-level names like `VDD` over deep `a.b.c` paths).
    pub name: String,
    /// All identifiers merged into this net, sorted.
    pub aliases: Vec<String>,
    /// `(device, terminal-name)` pairs attached to this net.
    pub terminals: Vec<(DeviceId, String)>,
}

/// A device instance with its typed terminals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Device {
    /// Instance path (dot notation).
    pub name: String,
    /// The `9D` type name (e.g. `NMOS_ENH`).
    pub device_type: String,
    /// Electrical class.
    pub class: DeviceClass,
    /// `(terminal-name, net)` pairs.
    pub terminals: Vec<(String, NetId)>,
}

/// An extracted or intended net list.
///
/// Equality compares the canonical content (nets and devices); the
/// name-lookup table is derived data, built lazily on the first
/// [`Netlist::net_by_name`] call — net-list construction is on the
/// incremental re-check path, where most rebuilt lists are never
/// queried by name.
#[derive(Debug, Default)]
pub struct Netlist {
    nets: Vec<Net>,
    devices: Vec<Device>,
    by_name: std::sync::OnceLock<HashMap<String, NetId>>,
}

impl Clone for Netlist {
    fn clone(&self) -> Self {
        Netlist {
            nets: self.nets.clone(),
            devices: self.devices.clone(),
            by_name: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Netlist {
    fn eq(&self, other: &Self) -> bool {
        self.nets == other.nets && self.devices == other.devices
    }
}

impl Eq for Netlist {}

impl Netlist {
    /// All nets.
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// A net by id.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0 as usize]
    }

    /// A device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0 as usize]
    }

    /// Finds the net that has `name` among its aliases.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name
            .get_or_init(|| {
                let mut map = HashMap::new();
                for (i, net) in self.nets.iter().enumerate() {
                    for a in &net.aliases {
                        map.insert(a.clone(), NetId(i as u32));
                    }
                }
                map
            })
            .get(name)
            .copied()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }
}

/// A device staged in the builder: path, type, class, and terminal
/// `(name, interned net key)` pairs.
type StagedDevice = (String, String, DeviceClass, Vec<(String, u32)>);

/// A device staged for [`assemble_netlist`], borrowing its strings.
#[derive(Debug, Clone)]
pub struct AssembleDevice<'a> {
    /// Instance path (dot notation).
    pub name: &'a str,
    /// The `9D` type name.
    pub device_type: &'a str,
    /// Electrical class.
    pub class: DeviceClass,
    /// `(terminal-name, node)` pairs.
    pub terminals: Vec<(&'a str, u32)>,
}

/// Assembles a canonical [`Netlist`] from an explicit node/edge/device
/// graph, returning it together with the per-node net resolution
/// (aligned with the `nodes` slice).
///
/// This is the single canonicalisation path: [`NetlistBuilder::finish`]
/// is a thin wrapper over it, and the incremental checker calls it
/// directly with a persistently interned graph — which is why a patched
/// session netlist is byte-identical to a from-scratch build: both are
/// this one pure function of (live nodes, connectivity, devices).
///
/// Canonical form: nets are the connected components of the node graph;
/// a net's canonical name is its shortest (then lexicographically
/// smallest) alias; `aliases` are sorted; nets are ordered by canonical
/// name; terminals appear in device order. Node ids may be sparse —
/// edge/terminal endpoints must all appear in `nodes`.
pub fn assemble_netlist(
    nodes: &[(u32, &str)],
    edges: &[(u32, u32)],
    devices: &[AssembleDevice<'_>],
) -> (Netlist, Vec<NetId>) {
    // Dense remap so union-find stays compact under sparse node ids.
    let max_node = nodes.iter().map(|&(n, _)| n).max().map_or(0, |n| n + 1);
    let mut dense: Vec<u32> = vec![u32::MAX; max_node as usize];
    let mut uf = UnionFind::new();
    for (node, _) in nodes {
        dense[*node as usize] = uf.make();
    }
    for (a, b) in edges {
        uf.union(dense[*a as usize], dense[*b as usize]);
    }

    // Group aliases by component root (dense root ids index a Vec).
    let mut groups: Vec<Vec<&str>> = vec![Vec::new(); nodes.len()];
    for (node, name) in nodes {
        groups[uf.find(dense[*node as usize]) as usize].push(name);
    }
    // Deterministic net order: by canonical (shortest, then smallest)
    // alias.
    let mut roots: Vec<(&str, u32, Vec<&str>)> = groups
        .into_iter()
        .enumerate()
        .filter(|(_, aliases)| !aliases.is_empty())
        .map(|(root, aliases)| {
            let canon = *aliases
                .iter()
                .min_by_key(|a| (a.len(), **a))
                .expect("group is non-empty");
            (canon, root as u32, aliases)
        })
        .collect();
    roots.sort_unstable_by(|a, b| a.0.cmp(b.0));

    let mut root_to_net: Vec<NetId> = vec![NetId(u32::MAX); uf.len()];
    let mut nets: Vec<Net> = Vec::with_capacity(roots.len());
    for (canon, root, mut aliases) in roots {
        let id = NetId(nets.len() as u32);
        aliases.sort_unstable();
        root_to_net[root as usize] = id;
        nets.push(Net {
            name: canon.to_string(),
            aliases: aliases.into_iter().map(str::to_string).collect(),
            terminals: Vec::new(),
        });
    }

    let mut out_devices: Vec<Device> = Vec::with_capacity(devices.len());
    for (di, dev) in devices.iter().enumerate() {
        let mut terminals = Vec::with_capacity(dev.terminals.len());
        for (tname, node) in &dev.terminals {
            let net = root_to_net[uf.find(dense[*node as usize]) as usize];
            nets[net.0 as usize]
                .terminals
                .push((DeviceId(di as u32), (*tname).to_string()));
            terminals.push(((*tname).to_string(), net));
        }
        out_devices.push(Device {
            name: dev.name.to_string(),
            device_type: dev.device_type.to_string(),
            class: dev.class,
            terminals,
        });
    }

    let node_nets: Vec<NetId> = nodes
        .iter()
        .map(|&(node, _)| root_to_net[uf.find(dense[node as usize]) as usize])
        .collect();

    (
        Netlist {
            nets,
            devices: out_devices,
            by_name: std::sync::OnceLock::new(),
        },
        node_nets,
    )
}

/// Builder: intern net keys, merge them as connections are discovered, add
/// devices, then [`NetlistBuilder::finish`] into a canonical [`Netlist`].
#[derive(Debug, Clone, Default)]
pub struct NetlistBuilder {
    uf: UnionFind,
    keys: HashMap<String, u32>,
    names: Vec<String>,
    edges: Vec<(u32, u32)>,
    devices: Vec<StagedDevice>,
}

impl NetlistBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        NetlistBuilder::default()
    }

    /// Interns a net identifier, returning its node.
    pub fn node(&mut self, key: &str) -> u32 {
        if let Some(&n) = self.keys.get(key) {
            return n;
        }
        let n = self.uf.make();
        debug_assert_eq!(n as usize, self.names.len());
        self.keys.insert(key.to_string(), n);
        self.names.push(key.to_string());
        n
    }

    /// Records that two net identifiers are connected (merges their nets).
    pub fn connect(&mut self, a: &str, b: &str) {
        let na = self.node(a);
        let nb = self.node(b);
        self.edges.push((na, nb));
        self.uf.union(na, nb);
    }

    /// True if two identifiers are currently on the same net.
    pub fn connected(&mut self, a: &str, b: &str) -> bool {
        let na = self.node(a);
        let nb = self.node(b);
        self.uf.same(na, nb)
    }

    /// Adds a device with `(terminal-name, net-key)` pairs.
    pub fn add_device(
        &mut self,
        name: &str,
        device_type: &str,
        class: DeviceClass,
        terminals: &[(&str, &str)],
    ) {
        let terms: Vec<(String, u32)> = terminals
            .iter()
            .map(|(t, key)| (t.to_string(), self.node(key)))
            .collect();
        self.devices
            .push((name.to_string(), device_type.to_string(), class, terms));
    }

    /// Produces the canonical net list (through [`assemble_netlist`],
    /// the same path the incremental checker's patched graph takes).
    pub fn finish(self) -> Netlist {
        let nodes: Vec<(u32, &str)> = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u32, n.as_str()))
            .collect();
        let devices: Vec<AssembleDevice<'_>> = self
            .devices
            .iter()
            .map(|(name, device_type, class, terms)| AssembleDevice {
                name,
                device_type,
                class: *class,
                terminals: terms.iter().map(|(t, n)| (t.as_str(), *n)).collect(),
            })
            .collect();
        assemble_netlist(&nodes, &self.edges, &devices).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter_netlist() -> Netlist {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pullup",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "VDD")],
        );
        b.add_device(
            "pulldown",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "in"), ("S", "GND"), ("D", "out")],
        );
        b.finish()
    }

    #[test]
    fn build_inverter() {
        let n = inverter_netlist();
        assert_eq!(n.device_count(), 2);
        assert_eq!(n.net_count(), 4); // VDD, GND, in, out
        let out = n.net_by_name("out").unwrap();
        assert_eq!(n.net(out).terminals.len(), 3);
    }

    #[test]
    fn connect_merges_aliases() {
        let mut b = NetlistBuilder::new();
        b.connect("a.out", "b.in");
        b.connect("b.in", "x");
        let n = b.finish();
        assert_eq!(n.net_count(), 1);
        let id = n.net_by_name("x").unwrap();
        assert_eq!(n.net_by_name("a.out"), Some(id));
        assert_eq!(n.net(id).name, "x"); // shortest alias wins
        assert_eq!(n.net(id).aliases.len(), 3);
    }

    #[test]
    fn canonical_name_prefers_short_toplevel() {
        let mut b = NetlistBuilder::new();
        b.connect("i3.i2.vdd", "VDD");
        let n = b.finish();
        assert_eq!(n.net(NetId(0)).name, "VDD");
    }

    #[test]
    fn device_terminals_resolve_through_merges() {
        let mut b = NetlistBuilder::new();
        b.add_device(
            "t1",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "g1"), ("S", "s1"), ("D", "d1")],
        );
        b.connect("d1", "wire");
        b.connect("wire", "g2");
        b.add_device(
            "t2",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "g2"), ("S", "s2"), ("D", "d2")],
        );
        let n = b.finish();
        let d1 = n.net_by_name("d1").unwrap();
        let g2 = n.net_by_name("g2").unwrap();
        assert_eq!(d1, g2);
        // Both devices appear on the shared net.
        let net = n.net(d1);
        assert_eq!(net.terminals.len(), 2);
    }

    #[test]
    fn deterministic_order() {
        let a = inverter_netlist();
        let b = inverter_netlist();
        assert_eq!(a, b);
    }
}
