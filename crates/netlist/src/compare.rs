//! Net-list consistency checking.
//!
//! "With this hierarchical net list available, it is now possible \[...\]
//! to check the net list against an input net list for consistency."
//!
//! Two comparison modes:
//!
//! * [`compare_by_names`] — when extracted and intended net lists share net
//!   names (aliases), report per-name discrepancies directly;
//! * [`compare_by_structure`] — name-independent graph-isomorphism-style
//!   matching by iterative colour refinement (the approach later made
//!   famous by Gemini \[Ebeling & Zajicek\]): devices and nets are
//!   alternately re-coloured by their neighbourhoods until stable, then
//!   colour multisets are compared.

use crate::graph::Netlist;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Result of a net-list comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistDiff {
    /// True if the net lists were found consistent.
    pub matched: bool,
    /// Human-readable discrepancies (empty when matched).
    pub messages: Vec<String>,
}

impl NetlistDiff {
    fn ok() -> Self {
        NetlistDiff {
            matched: true,
            messages: Vec::new(),
        }
    }
}

/// Compares two net lists by shared net names.
///
/// For every named net present in either list, the device-type multiset of
/// attached terminals must agree. Reports nets missing from one side and
/// nets with differing connectivity.
pub fn compare_by_names(extracted: &Netlist, intended: &Netlist) -> NetlistDiff {
    let mut diff = NetlistDiff::ok();
    let sig = |n: &Netlist, id: crate::graph::NetId| -> Vec<String> {
        let mut v: Vec<String> = n
            .net(id)
            .terminals
            .iter()
            .map(|(d, t)| format!("{}:{}", n.device(*d).device_type, t))
            .collect();
        v.sort();
        v
    };
    let mut names: Vec<&String> = extracted
        .nets()
        .iter()
        .chain(intended.nets().iter())
        .map(|n| &n.name)
        .collect();
    names.sort();
    names.dedup();
    for name in names {
        match (extracted.net_by_name(name), intended.net_by_name(name)) {
            (Some(e), Some(i)) => {
                let se = sig(extracted, e);
                let si = sig(intended, i);
                if se != si {
                    diff.matched = false;
                    diff.messages.push(format!(
                        "net '{name}': extracted connections {se:?} != intended {si:?}"
                    ));
                }
            }
            (Some(_), None) => {
                diff.matched = false;
                diff.messages
                    .push(format!("net '{name}' extracted but not intended"));
            }
            (None, Some(_)) => {
                diff.matched = false;
                diff.messages
                    .push(format!("net '{name}' intended but not extracted"));
            }
            (None, None) => unreachable!("name came from one of the lists"),
        }
    }
    diff
}

/// Compares two net lists structurally by iterative colour refinement.
///
/// Initial device colour = device type; initial net colour = terminal
/// count. Each round, a device's colour absorbs the colours of its nets by
/// terminal name, and a net's colour absorbs the (device colour, terminal
/// name) multiset. After `rounds` iterations (or stabilisation) the colour
/// multisets of the two net lists must be equal. This is sound (isomorphic
/// lists always match) and exact on all layouts without symmetric
/// ambiguities.
pub fn compare_by_structure(a: &Netlist, b: &Netlist, rounds: usize) -> NetlistDiff {
    if a.device_count() != b.device_count() {
        return NetlistDiff {
            matched: false,
            messages: vec![format!(
                "device counts differ: {} vs {}",
                a.device_count(),
                b.device_count()
            )],
        };
    }
    if a.net_count() != b.net_count() {
        return NetlistDiff {
            matched: false,
            messages: vec![format!(
                "net counts differ: {} vs {}",
                a.net_count(),
                b.net_count()
            )],
        };
    }
    let ca = refine(a, rounds);
    let cb = refine(b, rounds);
    let mut msgs = Vec::new();
    if multiset(&ca.devices) != multiset(&cb.devices) {
        msgs.push(describe_mismatch(a, b, &ca.devices, &cb.devices));
    }
    if multiset(&ca.nets) != multiset(&cb.nets) {
        msgs.push("net neighbourhood signatures differ".to_string());
    }
    NetlistDiff {
        matched: msgs.is_empty(),
        messages: msgs,
    }
}

struct Colors {
    devices: Vec<u64>,
    nets: Vec<u64>,
}

fn refine(n: &Netlist, rounds: usize) -> Colors {
    let mut dev: Vec<u64> = n
        .devices()
        .iter()
        .map(|d| hash_one(&d.device_type))
        .collect();
    let mut net: Vec<u64> = n
        .nets()
        .iter()
        .map(|x| hash_one(&x.terminals.len()))
        .collect();
    for _ in 0..rounds {
        let new_net: Vec<u64> = n
            .nets()
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let mut parts: Vec<u64> = x
                    .terminals
                    .iter()
                    .map(|(d, t)| hash_one(&(dev[d.0 as usize], t)))
                    .collect();
                parts.sort_unstable();
                hash_one(&(net[i], parts))
            })
            .collect();
        let new_dev: Vec<u64> = n
            .devices()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let mut parts: Vec<u64> = d
                    .terminals
                    .iter()
                    .map(|(t, x)| hash_one(&(t, net[x.0 as usize])))
                    .collect();
                parts.sort_unstable();
                hash_one(&(dev[i], parts))
            })
            .collect();
        if new_dev == dev && new_net == net {
            break;
        }
        dev = new_dev;
        net = new_net;
    }
    Colors {
        devices: dev,
        nets: net,
    }
}

fn hash_one<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

fn multiset(v: &[u64]) -> HashMap<u64, usize> {
    let mut m = HashMap::new();
    for &x in v {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}

fn describe_mismatch(a: &Netlist, b: &Netlist, ca: &[u64], cb: &[u64]) -> String {
    let ma = multiset(ca);
    let mb = multiset(cb);
    // Name a device whose colour has no counterpart.
    for (i, c) in ca.iter().enumerate() {
        if ma.get(c) != mb.get(c) {
            return format!(
                "device '{}' ({}) has no structural counterpart",
                a.device(crate::graph::DeviceId(i as u32)).name,
                a.device(crate::graph::DeviceId(i as u32)).device_type
            );
        }
    }
    for (i, c) in cb.iter().enumerate() {
        if mb.get(c) != ma.get(c) {
            return format!(
                "device '{}' ({}) has no structural counterpart",
                b.device(crate::graph::DeviceId(i as u32)).name,
                b.device(crate::graph::DeviceId(i as u32)).device_type
            );
        }
    }
    "device neighbourhood signatures differ".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetlistBuilder;
    use diic_tech::DeviceClass;

    fn inverter(names: [&str; 4]) -> Netlist {
        let [vdd, gnd, input, output] = names;
        let mut b = NetlistBuilder::new();
        b.add_device(
            "pu",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", output), ("S", output), ("D", vdd)],
        );
        b.add_device(
            "pd",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", input), ("S", gnd), ("D", output)],
        );
        b.finish()
    }

    #[test]
    fn identical_netlists_match_by_names() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        let b = inverter(["VDD", "GND", "in", "out"]);
        let d = compare_by_names(&a, &b);
        assert!(d.matched, "{:?}", d.messages);
    }

    #[test]
    fn renamed_nets_fail_by_names_but_match_by_structure() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        let b = inverter(["VDD", "GND", "a", "y"]);
        assert!(!compare_by_names(&a, &b).matched);
        let d = compare_by_structure(&a, &b, 8);
        assert!(d.matched, "{:?}", d.messages);
    }

    #[test]
    fn missing_connection_detected_structurally() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        // Broken inverter: pull-down source floats instead of GND.
        let mut bb = NetlistBuilder::new();
        bb.add_device(
            "pu",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "VDD")],
        );
        bb.add_device(
            "pd",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "in"), ("S", "float"), ("D", "out")],
        );
        // Add a GND net so counts match.
        bb.node("GND");
        let b = bb.finish();
        let d = compare_by_structure(&a, &b, 8);
        assert!(!d.matched);
        assert!(!d.messages.is_empty());
    }

    #[test]
    fn swapped_terminals_detected() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        // Gate and drain swapped on the pull-down.
        let mut bb = NetlistBuilder::new();
        bb.add_device(
            "pu",
            "NMOS_DEP",
            DeviceClass::MosDepletion,
            &[("G", "out"), ("S", "out"), ("D", "VDD")],
        );
        bb.add_device(
            "pd",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "out"), ("S", "GND"), ("D", "in")],
        );
        let b = bb.finish();
        let d = compare_by_structure(&a, &b, 8);
        assert!(!d.matched);
    }

    #[test]
    fn count_mismatch_short_circuits() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        let mut bb = NetlistBuilder::new();
        bb.add_device(
            "only",
            "NMOS_ENH",
            DeviceClass::MosEnhancement,
            &[("G", "in"), ("S", "GND"), ("D", "out")],
        );
        let b = bb.finish();
        let d = compare_by_structure(&a, &b, 8);
        assert!(!d.matched);
        assert!(d.messages[0].contains("device counts differ"));
    }

    #[test]
    fn name_comparison_reports_each_side() {
        let a = inverter(["VDD", "GND", "in", "out"]);
        let b = inverter(["VDD", "GND", "in2", "out"]);
        let d = compare_by_names(&a, &b);
        assert!(!d.matched);
        assert!(d
            .messages
            .iter()
            .any(|m| m.contains("extracted but not intended")));
        assert!(d
            .messages
            .iter()
            .any(|m| m.contains("intended but not extracted")));
    }

    #[test]
    fn larger_chain_matches_structurally() {
        let chain = |prefix: &str| {
            let mut b = NetlistBuilder::new();
            for i in 0..8 {
                let input = format!("{prefix}n{i}");
                let output = format!("{prefix}n{}", i + 1);
                b.add_device(
                    &format!("inv{i}"),
                    "NMOS_ENH",
                    DeviceClass::MosEnhancement,
                    &[("G", input.as_str()), ("S", "GND"), ("D", output.as_str())],
                );
                b.add_device(
                    &format!("pu{i}"),
                    "NMOS_DEP",
                    DeviceClass::MosDepletion,
                    &[("G", output.as_str()), ("S", output.as_str()), ("D", "VDD")],
                );
            }
            b.finish()
        };
        let d = compare_by_structure(&chain("a_"), &chain("b_"), 12);
        assert!(d.matched, "{:?}", d.messages);
    }
}
